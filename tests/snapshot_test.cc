// Snapshot persistence tests (docs/PERSISTENCE.md): the CRC-64 kernel,
// the flat-layout primitives, the section container, the save → load
// round trip (every registered algorithm × every query sink, bitwise),
// the zero-copy aliasing guarantee, the corruption matrix (every typed
// failure a malformed file must produce instead of UB), mutable-set and
// planner-calibration round trips, InvertedIndex::Save/Open, and a
// cross-process save/load driven by the CI snapshot job.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/plain_set.h"
#include "core/ran_group_scan.h"
#include "fsi.h"
#include "index/inverted_index.h"
#include "storage/crc64.h"
#include "storage/layout.h"
#include "storage/mapped_file.h"
#include "storage/snapshot.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

using storage::Crc64;
using storage::SnapshotError;
using storage::SnapshotErrorCode;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fsi_" + name;
}

std::vector<std::byte> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> chars((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(chars.size());
  std::memcpy(bytes.data(), chars.data(), chars.size());
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

SnapshotErrorCode LoadErrorCode(const std::string& path) {
  try {
    (void)Engine::LoadSnapshot(path);
  } catch (const SnapshotError& e) {
    return e.code();
  }
  ADD_FAILURE() << "LoadSnapshot(" << path << ") did not throw";
  return SnapshotErrorCode::kIo;
}

// ---------------------------------------------------------------------------
// CRC-64/XZ

TEST(Crc64Test, KnownCheckValue) {
  // The CRC-64/XZ check value: CRC of the ASCII string "123456789".
  EXPECT_EQ(Crc64("123456789", 9), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64Test, EmptyIsZero) { EXPECT_EQ(Crc64("", 0), 0u); }

TEST(Crc64Test, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1027);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const std::uint64_t whole = Crc64(data.data(), data.size());
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                            std::size_t{63}, std::size_t{64},
                            std::size_t{1000}, data.size()}) {
    std::uint64_t crc = Crc64(data.data(), split);
    crc = Crc64(data.data() + split, data.size() - split, crc);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc64Test, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(256, 0xA5);
  const std::uint64_t before = Crc64(data.data(), data.size());
  data[137] ^= 0x10;
  EXPECT_NE(Crc64(data.data(), data.size()), before);
}

// ---------------------------------------------------------------------------
// FlatArray semantics

TEST(FlatArrayTest, OwningCopyRepointsView) {
  storage::FlatArray<Elem> a(ElemList{1, 2, 3});
  storage::FlatArray<Elem> b(a);  // copy must view its own storage
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 3u);
  storage::FlatArray<Elem> c(std::move(a));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 1u);
}

TEST(FlatArrayTest, BorrowedViewAliasesCaller) {
  const ElemList backing{5, 6, 7, 8};
  auto v = storage::FlatArray<Elem>::View(
      std::span<const Elem>(backing.data(), backing.size()));
  EXPECT_TRUE(v.borrowed());
  EXPECT_EQ(v.data(), backing.data());
  auto copy = v;  // copying a borrowed view stays a view
  EXPECT_EQ(copy.data(), backing.data());
}

TEST(FlatArrayTest, PayloadWriterAligns) {
  storage::PayloadWriter payload;
  const ElemList a{1, 2, 3};
  const std::vector<Word> b{4, 5};
  auto ra = payload.Append(std::span<const Elem>(a.data(), a.size()));
  auto rb = payload.Append(std::span<const Word>(b.data(), b.size()));
  EXPECT_EQ(ra.offset % storage::kFlatAlignment, 0u);
  EXPECT_EQ(rb.offset % storage::kFlatAlignment, 0u);
  EXPECT_EQ(ra.count, 3u);
  EXPECT_EQ(rb.count, 2u);
  auto back = storage::ResolveSpan<Word>(payload.bytes(), rb, "b");
  EXPECT_EQ(back[1], 5u);
}

TEST(FlatArrayTest, ResolveSpanRejectsOutOfBounds) {
  storage::PayloadWriter payload;
  const ElemList a{1, 2, 3};
  payload.Append(std::span<const Elem>(a.data(), a.size()));
  storage::FlatRef bogus{0, 1u << 20};
  try {
    (void)storage::ResolveSpan<Elem>(payload.bytes(), bogus, "bogus");
    FAIL() << "out-of-bounds ref resolved";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kCorrupt);
  }
}

// ---------------------------------------------------------------------------
// Section container

std::string BuildContainer(std::uint32_t extra_type,
                           std::uint32_t extra_flags) {
  std::ostringstream out(std::ios::binary);
  storage::SnapshotWriter writer(out);
  const char hello[] = "hello";
  writer.AddSection(storage::kSectionEngineMeta,
                    std::as_bytes(std::span(hello, 5)));
  const char extra[] = "future";
  writer.AddSection(extra_type, std::as_bytes(std::span(extra, 6)),
                    extra_flags);
  writer.Finish();
  return out.str();
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

TEST(SnapshotContainerTest, RoundTripsSections) {
  const std::string file = BuildContainer(storage::kSectionPayload, 0);
  storage::SnapshotReader reader(AsBytes(file));
  EXPECT_EQ(reader.header().version_major, storage::kFormatVersionMajor);
  ASSERT_EQ(reader.entries().size(), 2u);
  auto meta = reader.RequireSection(storage::kSectionEngineMeta, "meta");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(meta.data()),
                        meta.size()),
            "hello");
  EXPECT_FALSE(reader.Section(storage::kSectionTermTable).has_value());
}

TEST(SnapshotContainerTest, SkipsUnknownNonCriticalSection) {
  // An unknown *non-critical* section is a minor-version addition: the
  // reader indexes past it and old code keeps working.
  const std::string file = BuildContainer(/*extra_type=*/999, /*flags=*/0);
  storage::SnapshotReader reader(AsBytes(file));
  EXPECT_TRUE(reader.Section(storage::kSectionEngineMeta).has_value());
}

TEST(SnapshotContainerTest, RejectsUnknownCriticalSection) {
  const std::string file =
      BuildContainer(/*extra_type=*/999, storage::kSectionFlagCritical);
  try {
    storage::SnapshotReader reader(AsBytes(file));
    FAIL() << "unknown critical section accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kBadVersion);
  }
}

// ---------------------------------------------------------------------------
// Round-trip differential: every algorithm × every sink

class SnapshotRoundTripTest : public testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SnapshotRoundTripTest,
    testing::ValuesIn([] {
      std::vector<std::string> names;
      for (std::string_view n :
           AlgorithmRegistry::Global().Names(/*include_hidden=*/false)) {
        names.emplace_back(n);
      }
      return names;
    }()),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(SnapshotRoundTripTest, EverySinkBitwiseIdentical) {
  const std::string& spec = GetParam();
  const auto* desc = AlgorithmRegistry::Global().Find(spec);
  ASSERT_NE(desc, nullptr);
  const std::size_t k = desc->max_query_sets < 3 ? 2 : 3;

  Xoshiro256 rng(0xD1DC0DEULL);
  std::vector<std::size_t> sizes(k);
  for (std::size_t i = 0; i < k; ++i) sizes[i] = 300 + 450 * i;
  const auto lists = GenerateIntersectingSets(sizes, 64, 1u << 20, rng);

  Engine engine(spec, EngineOptions{.validation = ValidationPolicy::kFull});
  std::vector<PreparedSet> prepared;
  for (const auto& l : lists) prepared.push_back(engine.Prepare(l));
  const ElemList expected = engine.Query(prepared).Materialize();
  ASSERT_EQ(expected.size(), 64u);

  const std::string path = TempPath("rt_" + std::string(desc->name));
  engine.SaveSnapshot(path, std::span<const PreparedSet>(prepared));

  LoadedSnapshot loaded = Engine::LoadSnapshot(path);
  EXPECT_EQ(loaded.info.spec, spec);
  EXPECT_EQ(loaded.info.sets_total, k);
  ASSERT_EQ(loaded.sets.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(loaded.sets[i].size(), lists[i].size()) << "set " << i;
  }

  Query query = loaded.engine.Query(loaded.sets);
  // Sink 1: Materialize.
  EXPECT_EQ(query.Materialize(), expected);
  // Sink 2: ExecuteInto.
  ElemList into;
  query.ExecuteInto(&into);
  EXPECT_EQ(into, expected);
  // Sink 3: Count.
  EXPECT_EQ(loaded.engine.Query(loaded.sets).Count(), expected.size());
  // Sink 4: Visit.
  ElemList visited;
  loaded.engine.Query(loaded.sets).Visit(
      [&](Elem e) { visited.push_back(e); });
  std::sort(visited.begin(), visited.end());
  EXPECT_EQ(visited, expected);

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Zero-copy aliasing

bool Aliases(const void* p, const SnapshotInfo& info) {
  const auto* base = static_cast<const std::byte*>(info.map_base);
  const auto* q = static_cast<const std::byte*>(p);
  return base != nullptr && q >= base && q < base + info.mapped_bytes;
}

TEST(SnapshotZeroCopyTest, ScanStructureAliasesMapping) {
  Xoshiro256 rng(42);
  const auto lists = GenerateIntersectingSets({500, 800}, 40, 1u << 18, rng);
  Engine engine("RanGroupScan");
  std::vector<PreparedSet> prepared;
  for (const auto& l : lists) prepared.push_back(engine.Prepare(l));
  const std::string path = TempPath("zerocopy_scan");
  engine.SaveSnapshot(path, std::span<const PreparedSet>(prepared));

  LoadedSnapshot loaded = Engine::LoadSnapshot(path);
  EXPECT_EQ(loaded.info.sets_zero_copy, 2u);
  EXPECT_EQ(loaded.info.sets_rebuilt, 0u);
  EXPECT_EQ(loaded.info.load_mode, "mmap");
  for (const PreparedSet& s : loaded.sets) {
    const auto* scan = dynamic_cast<const ScanSet*>(s.raw());
    ASSERT_NE(scan, nullptr);
    // The structure arrays point straight into the mapped file — the
    // "zero per-element copies" guarantee, checked by address.
    EXPECT_TRUE(Aliases(scan->group_starts().data(), loaded.info));
    EXPECT_TRUE(Aliases(scan->images().data(), loaded.info));
    EXPECT_TRUE(Aliases(scan->gvals().data(), loaded.info));
  }
  std::remove(path.c_str());
}

TEST(SnapshotZeroCopyTest, PlainStructureAliasesMapping) {
  Xoshiro256 rng(43);
  const auto lists = GenerateIntersectingSets({300, 400}, 25, 1u << 18, rng);
  Engine engine("Merge");
  std::vector<PreparedSet> prepared;
  for (const auto& l : lists) prepared.push_back(engine.Prepare(l));
  const std::string path = TempPath("zerocopy_plain");
  engine.SaveSnapshot(path, std::span<const PreparedSet>(prepared));

  LoadedSnapshot loaded = Engine::LoadSnapshot(path);
  ASSERT_EQ(loaded.info.sets_zero_copy + loaded.info.sets_rebuilt, 2u);
  if (loaded.info.sets_zero_copy == 2) {
    for (const PreparedSet& s : loaded.sets) {
      const auto* plain = dynamic_cast<const PlainSet*>(s.raw());
      ASSERT_NE(plain, nullptr);
      EXPECT_TRUE(Aliases(plain->elems().data(), loaded.info));
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotZeroCopyTest, SetsOutliveTheLoadedSnapshotStruct) {
  // The backing mapping is refcounted into every zero-copy set: moving
  // the sets out and dropping everything else must keep the bytes alive.
  Xoshiro256 rng(44);
  const auto lists = GenerateIntersectingSets({600, 900}, 33, 1u << 18, rng);
  const std::string path = TempPath("lifetime");
  std::vector<PreparedSet> survivors;
  ElemList expected;
  {
    Engine engine("RanGroupScan");
    std::vector<PreparedSet> prepared;
    for (const auto& l : lists) prepared.push_back(engine.Prepare(l));
    expected = engine.Query(prepared).Materialize();
    engine.SaveSnapshot(path, std::span<const PreparedSet>(prepared));
  }
  Engine survivor_engine;
  {
    LoadedSnapshot loaded = Engine::LoadSnapshot(path);
    survivor_engine = loaded.engine;
    survivors = std::move(loaded.sets);
  }  // LoadedSnapshot (and its info/backing handle) destroyed here
  EXPECT_EQ(survivor_engine.Query(survivors).Materialize(), expected);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption matrix

class SnapshotCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs tests as separate processes, possibly
    // in parallel — a shared path would let one test truncate the file
    // under another's mmap.
    path_ = TempPath(
        std::string("corrupt_") +
        testing::UnitTest::GetInstance()->current_test_info()->name());
    Xoshiro256 rng(7);
    const auto lists =
        GenerateIntersectingSets({400, 700}, 30, 1u << 18, rng);
    Engine engine("RanGroupScan");
    std::vector<PreparedSet> prepared;
    for (const auto& l : lists) prepared.push_back(engine.Prepare(l));
    engine.SaveSnapshot(path_, std::span<const PreparedSet>(prepared));
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 128u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Re-stamps the header CRC (over the first 56 bytes) after a patch, so
  /// the test exercises the *intended* check rather than the checksum.
  void FixHeaderCrc() {
    const std::uint64_t crc = Crc64(bytes_.data(), storage::kHeaderCrcBytes);
    std::memcpy(bytes_.data() + storage::kHeaderCrcBytes, &crc, sizeof(crc));
  }

  SnapshotErrorCode PatchedLoadError() {
    WriteFileBytes(path_, bytes_);
    return LoadErrorCode(path_);
  }

  std::string path_;
  std::vector<std::byte> bytes_;
};

TEST_F(SnapshotCorruptionTest, BadMagic) {
  std::memset(bytes_.data(), 0x5A, 8);
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kBadMagic);
}

TEST_F(SnapshotCorruptionTest, ForeignEndianMagic) {
  // The magic as a big-endian writer would have laid it down.
  std::uint64_t swapped = 0;
  for (int i = 0; i < 8; ++i) {
    swapped = (swapped << 8) |
              ((storage::kSnapshotMagic >> (8 * i)) & 0xFF);
  }
  std::memcpy(bytes_.data(), &swapped, 8);
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kForeignEndian);
}

TEST_F(SnapshotCorruptionTest, ForeignEndianStamp) {
  const std::uint32_t stamp = 0x04030201;  // field offset 16 (snapshot.h)
  std::memcpy(bytes_.data() + 16, &stamp, sizeof(stamp));
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kForeignEndian);
}

TEST_F(SnapshotCorruptionTest, FutureMajorVersion) {
  const std::uint32_t future = storage::kFormatVersionMajor + 1;
  std::memcpy(bytes_.data() + 8, &future, sizeof(future));
  FixHeaderCrc();
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kBadVersion);
}

TEST_F(SnapshotCorruptionTest, AbiElemWidthMismatch) {
  const std::uint16_t wide_elem = 8;  // elem_size field, offset 20
  std::memcpy(bytes_.data() + 20, &wide_elem, sizeof(wide_elem));
  FixHeaderCrc();
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kAbiMismatch);
}

TEST_F(SnapshotCorruptionTest, HeaderBitFlip) {
  bytes_[40] ^= std::byte{0x01};  // inside the CRC-covered 56 bytes
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kChecksum);
}

TEST_F(SnapshotCorruptionTest, PayloadBitFlip) {
  bytes_[bytes_.size() / 2] ^= std::byte{0x20};
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kChecksum);
}

TEST_F(SnapshotCorruptionTest, TruncatedToHalf) {
  bytes_.resize(bytes_.size() / 2);
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kTruncated);
}

TEST_F(SnapshotCorruptionTest, TruncatedBelowHeader) {
  bytes_.resize(17);
  EXPECT_EQ(PatchedLoadError(), SnapshotErrorCode::kTruncated);
}

TEST_F(SnapshotCorruptionTest, MissingFile) {
  EXPECT_EQ(LoadErrorCode(TempPath("no_such_snapshot")),
            SnapshotErrorCode::kIo);
}

TEST_F(SnapshotCorruptionTest, GarbageFile) {
  std::vector<std::byte> garbage(4096, std::byte{0xAB});
  WriteFileBytes(path_, garbage);
  EXPECT_EQ(LoadErrorCode(path_), SnapshotErrorCode::kBadMagic);
}

// ---------------------------------------------------------------------------
// Mutable sets

TEST(SnapshotMutableTest, EffectiveContentsRoundTripAndStayMutable) {
  Engine engine("Merge");
  PreparedSet a = engine.PrepareMutable({10, 20, 30, 40});
  PreparedSet b = engine.PrepareMutable({20, 30, 50});
  ASSERT_TRUE(a.Insert(25));
  ASSERT_TRUE(b.Insert(25));
  ASSERT_TRUE(a.Erase(40));

  const std::string path = TempPath("mutable");
  std::vector<const PreparedSet*> handles{&a, &b};
  engine.SaveSnapshot(path,
                      std::span<const PreparedSet* const>(handles));

  LoadedSnapshot loaded = Engine::LoadSnapshot(path);
  EXPECT_EQ(loaded.info.sets_mutable, 2u);
  ASSERT_EQ(loaded.sets.size(), 2u);
  EXPECT_TRUE(loaded.sets[0].is_mutable());
  // The delta was folded into the frozen base at save time.
  EXPECT_EQ(loaded.sets[0].delta_size(), 0u);
  EXPECT_EQ(loaded.sets[0].size(), 4u);  // 10 20 25 30

  ElemList both =
      loaded.engine.Query({&loaded.sets[0], &loaded.sets[1]}).Materialize();
  EXPECT_EQ(both, (ElemList{20, 25, 30}));

  // The loaded sets accept further updates, visible to queries.
  ASSERT_TRUE(loaded.sets[1].Insert(10));
  both =
      loaded.engine.Query({&loaded.sets[0], &loaded.sets[1]}).Materialize();
  EXPECT_EQ(both, (ElemList{10, 20, 25, 30}));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Planner calibration stamping

TEST(SnapshotCalibrationTest, LoadedPlannerUsesStampedConstants) {
  Xoshiro256 rng(9);
  const auto lists = GenerateIntersectingSets({500, 900}, 45, 1u << 18, rng);
  Engine engine("Planner");
  std::vector<PreparedSet> prepared;
  for (const auto& l : lists) prepared.push_back(engine.Prepare(l));
  const ElemList expected = engine.Query(prepared).Materialize();

  const std::string path = TempPath("calibration");
  engine.SaveSnapshot(path, std::span<const PreparedSet>(prepared));
  LoadedSnapshot loaded = Engine::LoadSnapshot(path);
  // The load must reuse the stamped constants, not re-measure.
  EXPECT_EQ(loaded.info.calibration_source, "snapshot");
  EXPECT_EQ(loaded.info.spec, "Planner");
  EXPECT_EQ(loaded.engine.Query(loaded.sets).Materialize(), expected);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Errors on misuse

TEST(SnapshotApiTest, RejectsForeignHandles) {
  Engine a("Merge");
  Engine b("Merge");
  PreparedSet pa = a.Prepare({1, 2, 3});
  std::vector<const PreparedSet*> handles{&pa};
  EXPECT_THROW(b.SaveSnapshot(TempPath("foreign"),
                              std::span<const PreparedSet* const>(handles)),
               std::invalid_argument);
}

TEST(SnapshotApiTest, SaveToUnwritablePathThrowsIo) {
  Engine engine("Merge");
  PreparedSet s = engine.Prepare({1, 2, 3});
  std::vector<const PreparedSet*> handles{&s};
  try {
    engine.SaveSnapshot("/nonexistent_dir_fsi/snap",
                        std::span<const PreparedSet* const>(handles));
    FAIL() << "save to unwritable path succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kIo);
  }
}

// ---------------------------------------------------------------------------
// InvertedIndex::Save / Open

std::vector<std::string> Terms(std::initializer_list<const char*> ts) {
  return {ts.begin(), ts.end()};
}

TEST(IndexSnapshotTest, RoundTripsQueriesAndDictionary) {
  InvertedIndex index{Engine("Hybrid")};
  index.AddDocument(1, Terms({"a", "b"}));
  index.AddDocument(2, Terms({"a", "c"}));
  index.AddDocument(5, Terms({"a", "b", "c"}));
  index.AddDocument(9, Terms({"b", "c"}));
  index.Finalize();

  const std::string path = TempPath("index");
  index.Save(path);

  SnapshotInfo info;
  InvertedIndex opened = InvertedIndex::Open(path, {}, &info);
  EXPECT_EQ(info.sets_total, 3u);
  EXPECT_EQ(opened.num_terms(), 3u);
  EXPECT_EQ(opened.num_documents(), 4u);
  EXPECT_FALSE(opened.updatable());
  EXPECT_EQ(opened.DocumentFrequency("a"), 3u);
  EXPECT_EQ(opened.DocumentFrequency("zzz"), 0u);
  const auto ab = Terms({"a", "b"});
  EXPECT_EQ(opened.Query(ab), index.Query(ab));
  EXPECT_EQ(opened.Query(ab), (ElemList{1, 5}));
  const auto abc = Terms({"a", "b", "c"});
  EXPECT_EQ(opened.CountMatching(abc), 1u);
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, UpdatableIndexComesBackUpdatable) {
  InvertedIndex index;
  index.AddDocument(1, Terms({"x", "y"}));
  index.AddDocument(3, Terms({"x"}));
  index.FinalizeUpdatable();
  index.InsertDocument(7, Terms({"x", "y"}));

  const std::string path = TempPath("index_upd");
  index.Save(path);

  InvertedIndex opened = InvertedIndex::Open(path);
  EXPECT_TRUE(opened.updatable());
  const auto xy = Terms({"x", "y"});
  EXPECT_EQ(opened.Query(xy), (ElemList{1, 7}));
  // Updates keep working after the reload.
  opened.InsertDocument(9, xy);
  EXPECT_EQ(opened.Query(xy), (ElemList{1, 7, 9}));
  opened.EraseDocument(1, xy);
  EXPECT_EQ(opened.Query(xy), (ElemList{7, 9}));
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, SaveBeforeFinalizeThrows) {
  InvertedIndex index;
  index.AddDocument(1, Terms({"a"}));
  EXPECT_THROW(index.Save(TempPath("unfinalized")), std::logic_error);
}

// ---------------------------------------------------------------------------
// Cross-process: driven by CI in two phases (save in one process, load in
// another) via FSI_SNAPSHOT_CROSS_FILE / FSI_SNAPSHOT_CROSS_PHASE; without
// the env vars, both phases run here (fresh mapping either way).

ElemList CrossLists(std::size_t i) {
  Xoshiro256 rng(0xCAFE + i);
  return SampleSortedSet(2000 + 500 * i, 1u << 20, rng);
}

TEST(SnapshotCrossProcessTest, SaveThenLoad) {
  const char* env_file = std::getenv("FSI_SNAPSHOT_CROSS_FILE");
  const char* env_phase = std::getenv("FSI_SNAPSHOT_CROSS_PHASE");
  const std::string path =
      env_file != nullptr ? env_file : TempPath("cross");
  const std::string phase = env_phase != nullptr ? env_phase : "both";

  ElemList expected;
  if (phase == "save" || phase == "both") {
    Engine engine("Planner");
    std::vector<PreparedSet> prepared;
    for (std::size_t i = 0; i < 3; ++i) {
      prepared.push_back(engine.Prepare(CrossLists(i)));
    }
    expected = engine.Query(prepared).Materialize();
    engine.SaveSnapshot(path, std::span<const PreparedSet>(prepared));
  }
  if (phase == "load" || phase == "both") {
    if (expected.empty()) {
      // Load phase in a fresh process: recompute the ground truth from
      // the deterministic generators.
      Engine ref("Merge");
      std::vector<PreparedSet> prepared;
      for (std::size_t i = 0; i < 3; ++i) {
        prepared.push_back(ref.Prepare(CrossLists(i)));
      }
      expected = ref.Query(prepared).Materialize();
    }
    LoadedSnapshot loaded = Engine::LoadSnapshot(path);
    EXPECT_EQ(loaded.info.sets_total, 3u);
    EXPECT_EQ(loaded.engine.Query(loaded.sets).Materialize(), expected);
    if (phase == "both") std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace fsi
