// Invariant tests for the multi-resolution structure (Section 3.2.1):
// groups partition the set at every resolution, images match group
// contents, and first/next chains enumerate exactly h^{-1}(y, L^z) in
// g-order.

#include "core/multi_resolution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

class MultiResolutionTest : public ::testing::Test {
 protected:
  MultiResolutionTest() : g_(32, 111), h_(222) {}

  FeistelPermutation g_;
  WordHash h_;
};

TEST_F(MultiResolutionTest, EmptySet) {
  MultiResolutionSet s({}, g_, h_);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_GE(s.max_resolution(), 0);
  auto [lo, hi] = s.GroupRange(0, 0);
  EXPECT_EQ(lo, hi);
}

TEST_F(MultiResolutionTest, GvalsAreSortedAndBijective) {
  Xoshiro256 rng(1);
  ElemList set = SampleSortedSet(5000, 1 << 24, rng);
  MultiResolutionSet s(set, g_, h_);
  ASSERT_EQ(s.size(), set.size());
  auto gv = s.gvals();
  EXPECT_TRUE(std::is_sorted(gv.begin(), gv.end()));
  // Inverting every gval must recover the original set exactly.
  ElemList recovered;
  for (auto v : gv) recovered.push_back(static_cast<Elem>(g_.Invert(v)));
  std::sort(recovered.begin(), recovered.end());
  EXPECT_EQ(recovered, set);
}

TEST_F(MultiResolutionTest, GroupsPartitionEveryResolution) {
  Xoshiro256 rng(2);
  ElemList set = SampleSortedSet(3000, 1 << 20, rng);
  MultiResolutionSet s(set, g_, h_);
  for (int t = 0; t <= s.max_resolution(); ++t) {
    std::uint32_t covered = 0;
    std::uint32_t prev_hi = 0;
    for (std::uint64_t z = 0; z < (std::uint64_t{1} << t); ++z) {
      auto [lo, hi] = s.GroupRange(t, z);
      ASSERT_EQ(lo, prev_hi) << "gap at t=" << t << " z=" << z;
      ASSERT_LE(lo, hi);
      // Every element in the group has prefix z.
      for (std::uint32_t i = lo; i < hi; ++i) {
        ASSERT_EQ(static_cast<std::uint64_t>(s.gvals()[i]) >> (32 - t), z);
      }
      covered += hi - lo;
      prev_hi = hi;
    }
    ASSERT_EQ(covered, s.size()) << "t=" << t;
  }
}

TEST_F(MultiResolutionTest, ImagesMatchGroupContents) {
  Xoshiro256 rng(3);
  ElemList set = SampleSortedSet(2000, 1 << 22, rng);
  MultiResolutionSet s(set, g_, h_);
  for (int t : {0, 2, s.max_resolution() / 2, s.max_resolution()}) {
    for (std::uint64_t z = 0; z < (std::uint64_t{1} << t); ++z) {
      auto [lo, hi] = s.GroupRange(t, z);
      Word expected = 0;
      for (std::uint32_t i = lo; i < hi; ++i) {
        expected |= WordBit(s.hval(i));
      }
      ASSERT_EQ(s.Image(t, z), expected) << "t=" << t << " z=" << z;
    }
  }
}

TEST_F(MultiResolutionTest, HvalsMatchHashOfGval) {
  Xoshiro256 rng(4);
  ElemList set = SampleSortedSet(1000, 1 << 20, rng);
  MultiResolutionSet s(set, g_, h_);
  for (std::uint32_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.hval(i), h_(s.gvals()[i]));
  }
}

TEST_F(MultiResolutionTest, FirstNextChainsEnumerateInvertedMappings) {
  Xoshiro256 rng(5);
  ElemList set = SampleSortedSet(4000, 1 << 24, rng);
  MultiResolutionSet s(set, g_, h_);
  for (int t : {1, 4, s.max_resolution()}) {
    for (std::uint64_t z = 0; z < (std::uint64_t{1} << t); ++z) {
      auto [lo, hi] = s.GroupRange(t, z);
      for (int y = 0; y < kWordBits; ++y) {
        // Reference: positions in [lo, hi) with hval == y, ascending.
        std::vector<std::uint32_t> expected;
        for (std::uint32_t i = lo; i < hi; ++i) {
          if (s.hval(i) == y) expected.push_back(i);
        }
        // Walk the chain.
        std::vector<std::uint32_t> chain;
        std::uint32_t p = s.FirstPos(t, z, y);
        while (p != kNoPos && p < hi) {
          chain.push_back(p);
          p = s.NextPos(p);
        }
        ASSERT_EQ(chain, expected) << "t=" << t << " z=" << z << " y=" << y;
      }
    }
  }
}

TEST_F(MultiResolutionTest, DefaultResolutionMatchesPaperFormula) {
  Xoshiro256 rng(6);
  for (std::size_t n : {1u, 8u, 9u, 64u, 100u, 1000u, 100000u}) {
    ElemList set = SampleSortedSet(n, 1 << 26, rng);
    MultiResolutionSet s(set, g_, h_);
    int expected = n <= 8 ? 0 : CeilLog2((n + 7) / 8);
    EXPECT_EQ(s.DefaultResolution(), s.ClampResolution(expected)) << n;
    // Expected group size at the default resolution is <= 2*sqrt(w).
    auto groups = std::uint64_t{1} << s.DefaultResolution();
    EXPECT_LE(static_cast<double>(n) / static_cast<double>(groups),
              2.0 * kSqrtWordBits);
  }
}

TEST_F(MultiResolutionTest, SpaceIsLinear) {
  // Theorem 3.8: O(n) words.  The full multi-resolution build has a
  // constant of ~16-18 words/element (every resolution keeps images and
  // packed first-tables); verify it stays bounded as n grows 100x.
  Xoshiro256 rng(7);
  double prev_ratio = 0;
  for (std::size_t n : {1000u, 10000u, 100000u}) {
    ElemList set = SampleSortedSet(n, 1 << 28, rng);
    MultiResolutionSet s(set, g_, h_);
    double words_per_elem =
        static_cast<double>(s.SizeInWords()) / static_cast<double>(n);
    EXPECT_LT(words_per_elem, 24.0) << "n=" << n;
    prev_ratio = words_per_elem;
  }
  (void)prev_ratio;
}

TEST_F(MultiResolutionTest, SingleResolutionIsMuchSmaller) {
  Xoshiro256 rng(8);
  ElemList set = SampleSortedSet(100000, 1 << 28, rng);
  MultiResolutionSet full(set, g_, h_, /*single_resolution=*/false);
  MultiResolutionSet single(set, g_, h_, /*single_resolution=*/true);
  EXPECT_TRUE(single.HasResolution(single.DefaultResolution()));
  EXPECT_FALSE(single.HasResolution(0));
  double words_per_elem =
      static_cast<double>(single.SizeInWords()) / 100000.0;
  EXPECT_LT(words_per_elem, 3.0);
  EXPECT_LT(single.SizeInWords() * 4, full.SizeInWords());
}

TEST_F(MultiResolutionTest, RejectsElementOutsideDomain) {
  FeistelPermutation small_g(16, 1);
  ElemList bad = {1, 2, 70000};  // 70000 >= 2^16
  EXPECT_THROW(MultiResolutionSet(bad, small_g, h_), std::invalid_argument);
}

}  // namespace
}  // namespace fsi
