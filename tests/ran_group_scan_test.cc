// Structure-level tests for RanGroupScan (Algorithm 5) and its ScanSet
// block layout (Section 3.3.1).

#include "core/ran_group_scan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

TEST(ScanSetTest, GroupsPartitionAndImagesMatch) {
  RanGroupScanIntersection alg;
  Xoshiro256 rng(1);
  ElemList set = SampleSortedSet(3000, 1 << 22, rng);
  auto pre = alg.Preprocess(set);
  const auto& s = As<ScanSet>(*pre);
  const auto& g = alg.permutation();
  const auto& fam = alg.hashes();
  ASSERT_EQ(s.m(), 4);
  std::uint32_t prev_hi = 0;
  for (std::uint64_t z = 0; z < s.num_groups(); ++z) {
    auto [lo, hi] = s.GroupRange(z);
    ASSERT_EQ(lo, prev_hi);
    prev_hi = hi;
    std::vector<Word> expected(4, 0);
    for (std::uint32_t i = lo; i < hi; ++i) {
      ASSERT_EQ(static_cast<std::uint64_t>(s.gvals()[i]) >>
                    (g.domain_bits() - s.t()),
                z);
      fam.AccumulateImages(s.gvals()[i], expected.data());
    }
    for (int j = 0; j < 4; ++j) {
      ASSERT_EQ(s.Image(z, j), expected[static_cast<std::size_t>(j)])
          << "z=" << z << " j=" << j;
    }
  }
  EXPECT_EQ(prev_hi, s.size());
}

TEST(ScanSetTest, ResolutionMatchesPaperFormula) {
  RanGroupScanIntersection alg;
  Xoshiro256 rng(2);
  for (std::size_t n : {0u, 1u, 8u, 9u, 63u, 64u, 65u, 4096u, 100000u}) {
    ElemList set = SampleSortedSet(n, 1 << 26, rng);
    auto pre = alg.Preprocess(set);
    const auto& s = As<ScanSet>(*pre);
    int expected = n <= 8 ? 0 : CeilLog2((n + 7) / 8);
    EXPECT_EQ(s.t(), expected) << "n=" << n;
  }
}

TEST(ScanSetTest, SpaceMatchesTheorem310Shape) {
  // Theorem 3.10: O(n(1 + m/sqrt(w))) words.  With 4-byte g-values our
  // constant is ~0.5 + (m + 0.5)/8 words per element.
  RanGroupScanIntersection::Options o;
  o.m = 2;
  RanGroupScanIntersection alg(o);
  Xoshiro256 rng(3);
  ElemList set = SampleSortedSet(100000, 1 << 27, rng);
  auto pre = alg.Preprocess(set);
  double words_per_elem = static_cast<double>(pre->SizeInWords()) / 100000.0;
  EXPECT_LT(words_per_elem, 1.1);
  EXPECT_GT(words_per_elem, 0.5);
}

TEST(RanGroupScanTest, VariousM) {
  Xoshiro256 rng(4);
  auto lists = GenerateIntersectingSets({2000, 3000}, 37, 1 << 22, rng);
  ElemList expected;
  std::set_intersection(lists[0].begin(), lists[0].end(), lists[1].begin(),
                        lists[1].end(), std::back_inserter(expected));
  for (int m : {1, 2, 3, 4, 6, 8}) {
    RanGroupScanIntersection::Options o;
    o.m = m;
    RanGroupScanIntersection alg(o);
    EXPECT_EQ(alg.IntersectLists(lists), expected) << "m=" << m;
  }
}

TEST(RanGroupScanTest, RejectsInvalidM) {
  RanGroupScanIntersection::Options o;
  o.m = 0;
  EXPECT_THROW(RanGroupScanIntersection alg(o), std::invalid_argument);
}

TEST(RanGroupScanTest, ManySetsSharedPrefixMemoization) {
  // k = 6 exercises the multi-level partial-AND memoization path.
  Xoshiro256 rng(5);
  auto lists = GenerateIntersectingSets({100, 200, 400, 800, 1600, 3200}, 11,
                                        1 << 22, rng);
  RanGroupScanIntersection alg;
  ElemList out = alg.IntersectLists(lists);
  ASSERT_EQ(out.size(), 11u);
  for (Elem x : out) {
    for (const auto& l : lists) {
      ASSERT_TRUE(std::binary_search(l.begin(), l.end(), x));
    }
  }
}

TEST(RanGroupScanTest, SeedChangesStructureNotResult) {
  Xoshiro256 rng(6);
  auto lists = GenerateIntersectingSets({500, 700}, 23, 1 << 20, rng);
  RanGroupScanIntersection::Options o1;
  o1.seed = 101;
  RanGroupScanIntersection::Options o2;
  o2.seed = 202;
  RanGroupScanIntersection a1(o1);
  RanGroupScanIntersection a2(o2);
  EXPECT_EQ(a1.IntersectLists(lists), a2.IntersectLists(lists));
}

TEST(RanGroupScanTest, SmallUniverseDomain) {
  // universe_bits smaller than 32 (domain must still cover the values).
  RanGroupScanIntersection::Options o;
  o.universe_bits = 16;
  RanGroupScanIntersection alg(o);
  Xoshiro256 rng(7);
  auto lists = GenerateIntersectingSets({300, 400}, 15, 1 << 16, rng);
  ElemList expected;
  std::set_intersection(lists[0].begin(), lists[0].end(), lists[1].begin(),
                        lists[1].end(), std::back_inserter(expected));
  EXPECT_EQ(alg.IntersectLists(lists), expected);
}

TEST(RanGroupScanTest, RejectsElementOutsideDomain) {
  RanGroupScanIntersection::Options o;
  o.universe_bits = 16;
  RanGroupScanIntersection alg(o);
  ElemList bad = {1, 2, 1 << 20};
  EXPECT_THROW(alg.Preprocess(bad), std::invalid_argument);
}

}  // namespace
}  // namespace fsi
