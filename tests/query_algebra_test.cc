// Oracle-differential tests for the boolean query algebra (api/expr.h).
//
// A randomized generator produces expression trees (depth <= 4, all node
// kinds, adversarial operands: the empty set, the whole universe,
// duplicated subtrees) whose expected result is computed bottom-up with
// textbook std::set_* algorithms.  Every tree is then evaluated through
// every Query sink (Materialize / ExecuteInto / Count / Visit / Limit /
// Unordered) on plain engines across algorithm specs, on a mutable-set
// engine that churns between trees, and on ShardedEngine deployments of
// 1/2/4/8 shards — all of which must match the oracle bitwise.
//
// Algebraic identities (De Morgan over a universe set, AND/OR
// idempotence, AtLeast(k) == And, AtLeast(1) == Or) are asserted as
// bitwise result equality, not plan equality: different plans, same
// elements.
//
// FSI_STRESS_ITERS multiplies tree counts (nightly CI runs 10); seeds are
// fixed per iteration so failures reproduce from the message alone.

#include "api/expr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/batch_runner.h"
#include "api/engine.h"
#include "api/planner.h"
#include "serve/sharded_engine.h"
#include "util/rng.h"

namespace fsi {
namespace {

std::size_t StressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

// ---------------------------------------------------------------------------
// Expression specs: a plain description of a tree, independent of any
// engine, from which we build the fsi::Expr, the ShardedExpr, and the
// oracle result.

struct Spec {
  ExprKind kind = ExprKind::kSet;
  std::vector<Spec> children;
  std::size_t threshold = 0;
  std::size_t leaf = 0;  // index into the leaf pool
};

/// The leaf pool: small sets over a tiny universe so random trees collide
/// constantly.  Index 0 is the empty set, index 1 the full universe, the
/// last entry duplicates another — the adversarial operands the optimizer
/// folds (empty AND-operand, X \ X, duplicate dedup) all arise naturally.
std::vector<ElemList> MakePool(Xoshiro256& rng, Elem universe) {
  std::vector<ElemList> pool;
  pool.push_back({});  // empty
  ElemList all(universe);
  for (Elem e = 0; e < universe; ++e) all[e] = e;
  pool.push_back(all);  // the whole universe
  for (int i = 0; i < 7; ++i) {
    const std::size_t n = 1 + rng.Next() % 40;
    ElemList list;
    for (std::size_t j = 0; j < n; ++j) {
      list.push_back(static_cast<Elem>(rng.Next() % universe));
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    pool.push_back(std::move(list));
  }
  pool.push_back(pool[2]);  // a duplicate of an earlier list
  return pool;
}

Spec GenSpec(Xoshiro256& rng, std::size_t pool_size, int depth) {
  if (depth <= 0 || rng.Next() % 100 < 30) {
    Spec leaf;
    leaf.kind = ExprKind::kSet;
    leaf.leaf = rng.Next() % pool_size;
    return leaf;
  }
  Spec spec;
  const std::uint64_t pick = rng.Next() % 4;
  const std::size_t arity = 1 + rng.Next() % 3;  // 1..3 children
  switch (pick) {
    case 0:
      spec.kind = ExprKind::kAnd;
      break;
    case 1:
      spec.kind = ExprKind::kOr;
      break;
    case 2:
      spec.kind = ExprKind::kDiff;
      break;
    default:
      spec.kind = ExprKind::kAtLeast;
      break;
  }
  const std::size_t k = spec.kind == ExprKind::kDiff ? 2 : arity;
  for (std::size_t i = 0; i < k; ++i) {
    spec.children.push_back(GenSpec(rng, pool_size, depth - 1));
  }
  // Adversarial duplicate operand: repeat the first child verbatim.
  if (spec.kind != ExprKind::kDiff && rng.Next() % 100 < 20) {
    spec.children.push_back(spec.children[0]);
  }
  if (spec.kind == ExprKind::kAtLeast) {
    // 1..k+1: includes the degenerate OR/AND ends and the always-empty
    // over-threshold.
    spec.threshold = 1 + rng.Next() % (spec.children.size() + 1);
  }
  return spec;
}

ElemList OracleEval(const Spec& s, const std::vector<ElemList>& pool) {
  switch (s.kind) {
    case ExprKind::kSet:
      return pool[s.leaf];
    case ExprKind::kAnd: {
      ElemList acc = OracleEval(s.children[0], pool);
      for (std::size_t i = 1; i < s.children.size(); ++i) {
        ElemList next = OracleEval(s.children[i], pool);
        ElemList merged;
        std::set_intersection(acc.begin(), acc.end(), next.begin(), next.end(),
                              std::back_inserter(merged));
        acc = std::move(merged);
      }
      return acc;
    }
    case ExprKind::kOr: {
      ElemList acc = OracleEval(s.children[0], pool);
      for (std::size_t i = 1; i < s.children.size(); ++i) {
        ElemList next = OracleEval(s.children[i], pool);
        ElemList merged;
        std::set_union(acc.begin(), acc.end(), next.begin(), next.end(),
                       std::back_inserter(merged));
        acc = std::move(merged);
      }
      return acc;
    }
    case ExprKind::kDiff: {
      ElemList lhs = OracleEval(s.children[0], pool);
      ElemList rhs = OracleEval(s.children[1], pool);
      ElemList out;
      std::set_difference(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(),
                          std::back_inserter(out));
      return out;
    }
    case ExprKind::kAtLeast: {
      // Children count with multiplicity, matching Expr::AtLeast.
      std::map<Elem, std::size_t> counts;
      for (const Spec& c : s.children) {
        for (Elem e : OracleEval(c, pool)) ++counts[e];
      }
      ElemList out;
      for (const auto& [elem, count] : counts) {
        if (count >= s.threshold) out.push_back(elem);
      }
      return out;
    }
    default:
      return {};
  }
}

Expr BuildExpr(const Spec& s, const std::vector<PreparedSet>& sets) {
  switch (s.kind) {
    case ExprKind::kSet:
      return Expr::Set(sets[s.leaf]);
    case ExprKind::kDiff:
      return Expr::Diff(BuildExpr(s.children[0], sets),
                        BuildExpr(s.children[1], sets));
    default: {
      std::vector<Expr> children;
      children.reserve(s.children.size());
      for (const Spec& c : s.children) children.push_back(BuildExpr(c, sets));
      if (s.kind == ExprKind::kAnd) return Expr::And(std::move(children));
      if (s.kind == ExprKind::kOr) return Expr::Or(std::move(children));
      return Expr::AtLeast(s.threshold, std::move(children));
    }
  }
}

ShardedExpr BuildShardedExpr(const Spec& s,
                             const std::vector<ShardedSet>& sets) {
  switch (s.kind) {
    case ExprKind::kSet:
      return ShardedExpr::Set(sets[s.leaf]);
    case ExprKind::kDiff:
      return ShardedExpr::Diff(BuildShardedExpr(s.children[0], sets),
                               BuildShardedExpr(s.children[1], sets));
    default: {
      std::vector<ShardedExpr> children;
      children.reserve(s.children.size());
      for (const Spec& c : s.children) {
        children.push_back(BuildShardedExpr(c, sets));
      }
      if (s.kind == ExprKind::kAnd) return ShardedExpr::And(std::move(children));
      if (s.kind == ExprKind::kOr) return ShardedExpr::Or(std::move(children));
      return ShardedExpr::AtLeast(s.threshold, std::move(children));
    }
  }
}

/// Runs `expr` through every sink and asserts bitwise equality with the
/// oracle.  Results of expression queries are sorted even under
/// Unordered() (documented), so both orderings compare directly.
void CheckAllSinks(const Engine& engine, const Expr& expr,
                   const ElemList& want, const std::string& context) {
  EXPECT_EQ(engine.Query(expr).Materialize(), want) << context;

  ElemList out;
  engine.Query(expr).ExecuteInto(&out);
  EXPECT_EQ(out, want) << context << " [ExecuteInto]";

  EXPECT_EQ(engine.Query(expr).Count(), want.size()) << context << " [Count]";

  ElemList unordered = engine.Query(expr).Unordered().Materialize();
  std::sort(unordered.begin(), unordered.end());
  EXPECT_EQ(unordered, want) << context << " [Unordered]";

  const std::size_t limit = want.size() / 2;
  ElemList limited = engine.Query(expr).Limit(limit).Materialize();
  EXPECT_EQ(limited,
            ElemList(want.begin(),
                     want.begin() + static_cast<std::ptrdiff_t>(limit)))
      << context << " [Limit]";

  ElemList visited;
  engine.Query(expr).Visit([&](Elem e) { visited.push_back(e); });
  EXPECT_EQ(visited, want) << context << " [Visit]";
}

// ---------------------------------------------------------------------------
// Plain engines: every registry family the algebra must compose with.

TEST(QueryAlgebraTest, PlainEnginesMatchOracle) {
  const std::size_t trees = 2600 * StressIters();
  constexpr Elem kUniverse = 192;
  for (const char* spec : {"Planner", "Merge", "RanGroupScan", "Hybrid"}) {
    Engine engine(spec);
    Xoshiro256 pool_rng(42);
    std::vector<ElemList> pool = MakePool(pool_rng, kUniverse);
    std::vector<PreparedSet> sets;
    for (const ElemList& list : pool) sets.push_back(engine.Prepare(list));
    for (std::size_t iter = 0; iter < trees; ++iter) {
      Xoshiro256 rng(1000 + iter);
      Spec tree = GenSpec(rng, pool.size(), 4);
      const Expr expr = BuildExpr(tree, sets);
      const ElemList want = OracleEval(tree, pool);
      CheckAllSinks(engine, expr, want,
                    std::string(spec) + " iter=" + std::to_string(iter));
      if (::testing::Test::HasFailure()) return;  // stop at first divergence
    }
  }
}

// ---------------------------------------------------------------------------
// Mutable engine: leaves churn between trees; every query must see the
// current (post-update) contents — version-keyed memoization may never
// serve a stale result.

TEST(QueryAlgebraTest, MutableEngineMatchesOracleUnderChurn) {
  const std::size_t trees = 2600 * StressIters();
  constexpr Elem kUniverse = 192;
  Engine engine;
  Xoshiro256 pool_rng(43);
  std::vector<ElemList> pool = MakePool(pool_rng, kUniverse);
  std::vector<PreparedSet> sets;
  for (const ElemList& list : pool) sets.push_back(engine.PrepareMutable(list));
  for (std::size_t iter = 0; iter < trees; ++iter) {
    Xoshiro256 rng(5000 + iter);
    // Churn one random leaf, mirroring the edit into the oracle pool.
    const std::size_t victim = rng.Next() % pool.size();
    const Elem elem = static_cast<Elem>(rng.Next() % kUniverse);
    ElemList& mirror = pool[victim];
    if (rng.Next() % 2 == 0) {
      sets[victim].Insert(elem);
      auto it = std::lower_bound(mirror.begin(), mirror.end(), elem);
      if (it == mirror.end() || *it != elem) mirror.insert(it, elem);
    } else {
      sets[victim].Erase(elem);
      auto it = std::lower_bound(mirror.begin(), mirror.end(), elem);
      if (it != mirror.end() && *it == elem) mirror.erase(it);
    }
    Spec tree = GenSpec(rng, pool.size(), 4);
    const Expr expr = BuildExpr(tree, sets);
    const ElemList want = OracleEval(tree, pool);
    CheckAllSinks(engine, expr, want, "mutable iter=" + std::to_string(iter));
    if (::testing::Test::HasFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// ShardedEngine: the projected per-shard evaluation concatenated in shard
// order must equal both the oracle and a single unsharded engine,
// bitwise, for every shard count.

TEST(QueryAlgebraTest, ShardedMatchesSingleEngineAcrossShardCounts) {
  const std::size_t trees = 700 * StressIters();
  constexpr Elem kUniverse = 256;
  Xoshiro256 pool_rng(44);
  std::vector<ElemList> pool = MakePool(pool_rng, kUniverse);

  Engine single;
  std::vector<PreparedSet> single_sets;
  for (const ElemList& list : pool) single_sets.push_back(single.Prepare(list));

  for (std::size_t num_shards : {1u, 2u, 4u, 8u}) {
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.universe_bound = kUniverse;
    ShardedEngine sharded(options);
    std::vector<ShardedSet> sharded_sets;
    for (const ElemList& list : pool) sharded_sets.push_back(sharded.Prepare(list));

    for (std::size_t iter = 0; iter < trees; ++iter) {
      Xoshiro256 rng(9000 + iter);
      Spec tree = GenSpec(rng, pool.size(), 4);
      const ElemList want = OracleEval(tree, pool);
      const ElemList via_single =
          single.Query(BuildExpr(tree, single_sets)).Materialize();
      ASSERT_EQ(via_single, want) << "single iter=" << iter;

      const ShardedExpr expr = BuildShardedExpr(tree, sharded_sets);
      ServeResult full = sharded.Serve(expr);
      ASSERT_TRUE(full.ok());
      ASSERT_EQ(full.elems, want)
          << "shards=" << num_shards << " iter=" << iter;
      ASSERT_EQ(full.result_size, want.size());

      ServeOptions count_options;
      count_options.count_only = true;
      ServeResult counted = sharded.Serve(expr, count_options);
      ASSERT_TRUE(counted.ok());
      ASSERT_EQ(counted.result_size, want.size())
          << "shards=" << num_shards << " iter=" << iter << " [count]";

      ServeOptions limit_options;
      limit_options.limit = want.size() / 2;
      ServeResult limited = sharded.Serve(expr, limit_options);
      ASSERT_TRUE(limited.ok());
      ASSERT_EQ(limited.elems,
                ElemList(want.begin(),
                         want.begin() +
                             static_cast<std::ptrdiff_t>(limit_options.limit)))
          << "shards=" << num_shards << " iter=" << iter << " [limit]";
    }
  }
}

// ---------------------------------------------------------------------------
// Algebraic identities, asserted as bitwise result equality.

TEST(QueryAlgebraTest, AlgebraicIdentities) {
  const std::size_t iters = 200 * StressIters();
  constexpr Elem kUniverse = 192;
  Engine engine;
  Xoshiro256 pool_rng(45);
  std::vector<ElemList> pool = MakePool(pool_rng, kUniverse);
  std::vector<PreparedSet> sets;
  for (const ElemList& list : pool) sets.push_back(engine.Prepare(list));
  const PreparedSet& universe = sets[1];  // MakePool index 1: all elements

  for (std::size_t iter = 0; iter < iters; ++iter) {
    Xoshiro256 rng(7000 + iter);
    Spec sa = GenSpec(rng, pool.size(), 2);
    Spec sb = GenSpec(rng, pool.size(), 2);
    const Expr a = BuildExpr(sa, sets);
    const Expr b = BuildExpr(sb, sets);
    const Expr u = Expr::Set(universe);

    // De Morgan: U \ (a AND b) == (U \ a) OR (U \ b).
    EXPECT_EQ(
        engine.Query(Expr::Diff(u, Expr::And({a, b}))).Materialize(),
        engine.Query(Expr::Or({Expr::Diff(u, a), Expr::Diff(u, b)}))
            .Materialize())
        << "iter=" << iter;
    // De Morgan dual: U \ (a OR b) == (U \ a) AND (U \ b).
    EXPECT_EQ(
        engine.Query(Expr::Diff(u, Expr::Or({a, b}))).Materialize(),
        engine.Query(Expr::And({Expr::Diff(u, a), Expr::Diff(u, b)}))
            .Materialize())
        << "iter=" << iter;
    // Idempotence.
    EXPECT_EQ(engine.Query(Expr::And({a, a})).Materialize(),
              engine.Query(a).Materialize())
        << "iter=" << iter;
    EXPECT_EQ(engine.Query(Expr::Or({a, a})).Materialize(),
              engine.Query(a).Materialize())
        << "iter=" << iter;
    // Threshold degeneration: AtLeast(k) == And, AtLeast(1) == Or.
    EXPECT_EQ(engine.Query(Expr::AtLeast(3, {a, b, a})).Materialize(),
              engine.Query(Expr::And({a, b, a})).Materialize())
        << "iter=" << iter;
    EXPECT_EQ(engine.Query(Expr::AtLeast(1, {a, b})).Materialize(),
              engine.Query(Expr::Or({a, b})).Materialize())
        << "iter=" << iter;
    // X \ X == empty.
    EXPECT_TRUE(engine.Query(Expr::Diff(a, a)).Materialize().empty())
        << "iter=" << iter;
    if (::testing::Test::HasFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Builder and query validation.

TEST(QueryAlgebraTest, BuilderValidation) {
  Engine engine;
  PreparedSet a = engine.Prepare({1, 2, 3});
  EXPECT_THROW(Expr::And({}), std::invalid_argument);
  EXPECT_THROW(Expr::Or({}), std::invalid_argument);
  EXPECT_THROW(Expr::AtLeast(0, {Expr::Set(a)}), std::invalid_argument);
  EXPECT_THROW(Expr::Set(PreparedSet{}), std::invalid_argument);
  EXPECT_THROW(Expr::Diff(Expr{}, Expr::Set(a)), std::invalid_argument);
  EXPECT_THROW(engine.Query(Expr{}), std::invalid_argument);
  // AtLeast above arity is valid — and always empty.
  EXPECT_TRUE(engine.Query(Expr::AtLeast(5, {Expr::Set(a), Expr::Set(a)}))
                  .Materialize()
                  .empty());
}

TEST(QueryAlgebraTest, ForeignLeafThrows) {
  Engine mine;
  Engine other;
  PreparedSet a = mine.Prepare({1, 2, 3});
  PreparedSet b = other.Prepare({2, 3, 4});
  EXPECT_THROW(mine.Query(Expr::And({Expr::Set(a), Expr::Set(b)})),
               std::invalid_argument);
  // Constant folding must not hide the foreign leaf: AND with the empty
  // set folds to None, but validation runs on the original tree.
  PreparedSet empty = mine.Prepare(ElemList{});
  EXPECT_THROW(
      mine.Query(Expr::And({Expr::Set(empty), Expr::Set(b)})),
      std::invalid_argument);
}

TEST(QueryAlgebraTest, ExplainRendersExpressionPlan) {
  Engine engine;
  PreparedSet a = engine.Prepare({1, 2, 3, 7});
  PreparedSet b = engine.Prepare({2, 3, 4, 7});
  PreparedSet c = engine.Prepare({3, 7, 9});
  Expr expr = Expr::Diff(Expr::And({Expr::Set(a), Expr::Set(b)}),
                         Expr::Set(c));
  const std::string text = engine.Query(expr).Explain().ToString();
  EXPECT_NE(text.find("expression plan"), std::string::npos) << text;
  EXPECT_NE(text.find("diff"), std::string::npos) << text;
  EXPECT_NE(text.find("and"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Expression batches through BatchRunner.

TEST(QueryAlgebraTest, BatchRunnerExpressionsMatchSerialLoop) {
  constexpr Elem kUniverse = 192;
  Engine engine;
  Xoshiro256 pool_rng(46);
  std::vector<ElemList> pool = MakePool(pool_rng, kUniverse);
  std::vector<PreparedSet> sets;
  for (const ElemList& list : pool) sets.push_back(engine.Prepare(list));

  std::vector<Expr> exprs;
  std::vector<ElemList> want;
  for (std::size_t iter = 0; iter < 200; ++iter) {
    Xoshiro256 rng(8000 + iter);
    Spec tree = GenSpec(rng, pool.size(), 3);
    exprs.push_back(BuildExpr(tree, sets));
    want.push_back(OracleEval(tree, pool));
  }

  BatchRunner runner(engine, {.num_threads = 4});
  EXPECT_EQ(runner.Materialize(std::span<const Expr>(exprs)), want);
  std::vector<std::size_t> counts =
      runner.Count(std::span<const Expr>(exprs));
  ASSERT_EQ(counts.size(), want.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], want[i].size()) << "i=" << i;
  }
}

}  // namespace
}  // namespace fsi
