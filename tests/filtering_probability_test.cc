// Statistical validation of the filtering analysis (Appendix A.5):
//  * Lemma A.1: for two sqrt(w)-element groups with empty intersection, one
//    word image filters with probability >= (1 - 1/sqrt(w))^sqrt(w)
//    (~0.3436 for w = 64);
//  * m independent images boost the failure rate to (1 - beta)^m;
//  * Proposition A.2: randomized group sizes concentrate around sqrt(w).
// All tests use fixed seeds and generous slack, so they are deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ran_group_scan.h"
#include "hash/universal_hash.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

TEST(FilteringTest, LemmaA1SingleImageBound) {
  // Empty-intersection pairs of 8-element sets: measure how often the word
  // images are disjoint.
  const double kBound = std::pow(1.0 - 1.0 / 8.0, 8.0);  // ~0.3436
  Xoshiro256 rng(61);
  SplitMix64 seeds(62);
  int filtered = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    auto lists = GenerateIntersectingSets({8, 8}, 0, 1 << 24, rng);
    WordHash h(seeds.Next());
    Word img1 = 0;
    Word img2 = 0;
    for (Elem x : lists[0]) img1 |= h.Image(x);
    for (Elem x : lists[1]) img2 |= h.Image(x);
    if ((img1 & img2) == 0) ++filtered;
  }
  double rate = static_cast<double>(filtered) / kTrials;
  EXPECT_GT(rate, kBound - 0.03);  // must meet the lemma's lower bound
  EXPECT_LT(rate, 0.75);           // and not be trivially 1
}

TEST(FilteringTest, MultipleImagesBoostFiltering) {
  // P(filtered with m images) ~ 1 - (1 - beta)^m: must increase with m.
  Xoshiro256 rng(63);
  const int kTrials = 3000;
  std::vector<double> rates;
  for (int m : {1, 2, 4, 8}) {
    WordHashFamily fam(m, 0xabcdef12u + static_cast<unsigned>(m));
    int filtered = 0;
    Xoshiro256 trial_rng(64);
    for (int i = 0; i < kTrials; ++i) {
      auto lists = GenerateIntersectingSets({8, 8}, 0, 1 << 24, trial_rng);
      std::vector<Word> img1(static_cast<std::size_t>(m), 0);
      std::vector<Word> img2(static_cast<std::size_t>(m), 0);
      for (Elem x : lists[0]) fam.AccumulateImages(x, img1.data());
      for (Elem x : lists[1]) fam.AccumulateImages(x, img2.data());
      bool pass = false;
      for (int j = 0; j < m; ++j) {
        if ((img1[static_cast<std::size_t>(j)] &
             img2[static_cast<std::size_t>(j)]) == 0) {
          pass = true;
          break;
        }
      }
      if (pass) ++filtered;
    }
    rates.push_back(static_cast<double>(filtered) / kTrials);
  }
  for (std::size_t i = 1; i < rates.size(); ++i) {
    EXPECT_GT(rates[i], rates[i - 1]) << "m step " << i;
  }
  EXPECT_GT(rates.back(), 0.8);  // m=8 filters the vast majority
}

TEST(FilteringTest, NonEmptyIntersectionNeverFiltered) {
  // Soundness: if the groups share an element, every image pair intersects.
  Xoshiro256 rng(65);
  SplitMix64 seeds(66);
  for (int i = 0; i < 2000; ++i) {
    auto lists = GenerateIntersectingSets({8, 8}, 1 + rng.Below(7) % 8,
                                          1 << 24, rng);
    WordHash h(seeds.Next());
    Word img1 = 0;
    Word img2 = 0;
    for (Elem x : lists[0]) img1 |= h.Image(x);
    for (Elem x : lists[1]) img2 |= h.Image(x);
    ASSERT_NE(img1 & img2, 0u);
  }
}

TEST(FilteringTest, PropositionA2GroupSizeConcentration) {
  // Group sizes under the default resolution concentrate near sqrt(w):
  // mean in [sqrt(w)/2, sqrt(w)] (Prop. A.2(i)) and almost all groups below
  // delta(w) * sqrt(w) with delta(64) ~ 2.61 (Prop. A.2(iii)).
  RanGroupScanIntersection alg;
  Xoshiro256 rng(67);
  ElemList set = SampleSortedSet(100000, 1 << 26, rng);
  auto pre = alg.Preprocess(set);
  const auto& s = As<ScanSet>(*pre);
  double delta_w = 1.0 + std::sqrt(6.0 * std::log(4.0 * 8.0) / 8.0);
  std::size_t oversized = 0;
  double total = 0;
  for (std::uint64_t z = 0; z < s.num_groups(); ++z) {
    auto [lo, hi] = s.GroupRange(z);
    double size = hi - lo;
    total += size;
    if (size > delta_w * 8.0) ++oversized;
  }
  double mean = total / static_cast<double>(s.num_groups());
  EXPECT_GE(mean, 4.0);
  EXPECT_LE(mean, 8.0);
  // Prop. A.2(iii) bounds the tail at 1/(4 sqrt(w)) ~ 3%; allow 2x slack.
  EXPECT_LT(static_cast<double>(oversized) /
                static_cast<double>(s.num_groups()),
            0.06);
}

}  // namespace
}  // namespace fsi
