// Tests for the compressed structures (Section 4.1, Appendix B): size
// accounting and correctness of every codec, and the documented space
// relationships between them.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/compressed_baselines.h"
#include "baseline/lookup.h"
#include "baseline/merge.h"
#include "core/compressed_scan.h"
#include "core/ran_group_scan.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

TEST(CompressedPlainSetTest, DecodeRoundTrip) {
  Xoshiro256 rng(31);
  for (auto codec : {EliasCodec::kGamma, EliasCodec::kDelta}) {
    for (std::size_t n : {0u, 1u, 2u, 100u, 10000u}) {
      ElemList set = SampleSortedSet(n, 1 << 24, rng);
      CompressedPlainSet c(set, codec);
      EXPECT_EQ(c.Decode(), set);
      EXPECT_EQ(c.size(), n);
    }
  }
}

TEST(CompressedPlainSetTest, FirstElementZeroHandled) {
  ElemList set = {0, 1, 5, 1000};
  CompressedPlainSet c(set, EliasCodec::kDelta);
  EXPECT_EQ(c.Decode(), set);
}

TEST(CompressedPlainSetTest, CompressionActuallyCompresses) {
  // Dense lists have small gaps: compressed size must be far below the
  // uncompressed 0.5 words/element.
  Xoshiro256 rng(32);
  ElemList set = SampleSortedSet(100000, 1 << 18, rng);  // avg gap < 4
  CompressedPlainSet c(set, EliasCodec::kDelta);
  EXPECT_LT(c.SizeInWords(), set.size() / 4);
}

TEST(CompressedLookupSetTest, BucketDecodeRoundTrip) {
  Xoshiro256 rng(33);
  ElemList set = SampleSortedSet(5000, 1 << 20, rng);
  for (auto codec : {EliasCodec::kGamma, EliasCodec::kDelta}) {
    CompressedLookupSet c(set, codec, 5);  // B = 32 requested; the
    // structure may widen buckets to keep the directory O(n).
    ElemList all;
    std::vector<Elem> bucket;
    for (std::uint32_t b = 0; b < c.num_buckets(); ++b) {
      c.DecodeBucket(b, &bucket);
      for (Elem x : bucket) {
        EXPECT_EQ(x >> c.bucket_bits(), b);
        all.push_back(x);
      }
    }
    EXPECT_EQ(all, set);
    // Out-of-range bucket decodes empty.
    c.DecodeBucket(c.num_buckets() + 10, &bucket);
    EXPECT_TRUE(bucket.empty());
  }
}

TEST(CompressedScanSetTest, AllCodecsAgreeWithUncompressed) {
  Xoshiro256 rng(34);
  auto lists = GenerateIntersectingSets({3000, 5000, 8000}, 21, 1 << 22, rng);
  ElemList expected = GroundTruth(lists);
  for (auto codec :
       {ScanCodec::kLowbits, ScanCodec::kGamma, ScanCodec::kDelta}) {
    CompressedScanIntersection::Options o;
    o.codec = codec;
    CompressedScanIntersection alg(o);
    EXPECT_EQ(alg.IntersectLists(lists), expected);
  }
}

TEST(CompressedScanSetTest, MultipleHashImages) {
  Xoshiro256 rng(35);
  auto lists = GenerateIntersectingSets({2000, 2000}, 19, 1 << 20, rng);
  ElemList expected = GroundTruth(lists);
  for (int m : {1, 2, 4}) {
    CompressedScanIntersection::Options o;
    o.m = m;
    CompressedScanIntersection alg(o);
    EXPECT_EQ(alg.IntersectLists(lists), expected) << "m=" << m;
  }
}

TEST(CompressedScanSetTest, SingleSetDecodesFully) {
  Xoshiro256 rng(36);
  ElemList set = SampleSortedSet(4000, 1 << 22, rng);
  CompressedScanIntersection alg;
  EXPECT_EQ(alg.IntersectLists(std::vector<ElemList>{set}), set);
}

TEST(CompressedSpaceTest, PaperSpaceRelationships) {
  // Section 4.1: compressed Merge < compressed Lookup < RanGroupScan_Lowbits
  // in space; all three far below the m=4 uncompressed scan structure.
  Xoshiro256 rng(37);
  ElemList set = SampleSortedSet(100000, 1 << 22, rng);  // 1% dense

  CompressedPlainSet merge_delta(set, EliasCodec::kDelta);
  CompressedLookupSet lookup_delta(set, EliasCodec::kDelta, 5);

  CompressedScanIntersection::Options lo;
  lo.codec = ScanCodec::kLowbits;
  CompressedScanIntersection lowbits(lo);
  auto scan_lowbits = lowbits.Preprocess(set);

  RanGroupScanIntersection uncompressed;
  auto scan_plain = uncompressed.Preprocess(set);

  // The γ/δ-coded inverted index is the smallest; the Lowbits scan
  // structure costs more than compressed Merge but far less than the
  // uncompressed block structure.  (The Lookup directory is universe-
  // proportional, so its relation to Lowbits depends on density; the fig08
  // bench reports the measured ratios.)
  EXPECT_LT(merge_delta.SizeInWords(), lookup_delta.SizeInWords());
  EXPECT_LT(merge_delta.SizeInWords(), scan_lowbits->SizeInWords());
  EXPECT_LT(scan_lowbits->SizeInWords(), scan_plain->SizeInWords());
}

TEST(CompressedMergeTest, KWayStreamingDecode) {
  Xoshiro256 rng(38);
  auto lists =
      GenerateIntersectingSets({1000, 2000, 3000, 4000}, 15, 1 << 22, rng);
  ElemList expected = GroundTruth(lists);
  for (auto name : {"Merge_Gamma", "Merge_Delta"}) {
    CompressedMergeIntersection alg(name == std::string("Merge_Gamma")
                                        ? EliasCodec::kGamma
                                        : EliasCodec::kDelta);
    EXPECT_EQ(alg.IntersectLists(lists), expected) << name;
  }
}

TEST(CompressedLookupTest, SkewedProbing) {
  Xoshiro256 rng(39);
  auto lists = GenerateIntersectingSets({100, 50000}, 9, 1 << 24, rng);
  ElemList expected = GroundTruth(lists);
  CompressedLookupIntersection alg(EliasCodec::kDelta);
  EXPECT_EQ(alg.IntersectLists(lists), expected);
}

}  // namespace
}  // namespace fsi
