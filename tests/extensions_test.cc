// Tests for the extension modules: bag semantics (paper §3 note),
// t-threshold queries, and structure serialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "core/bag.h"
#include "core/intersector.h"
#include "core/ran_group_scan.h"
#include "core/serialization.h"
#include "core/threshold.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

// ---------------------------------------------------------------------------
// Bag semantics
// ---------------------------------------------------------------------------

TEST(BagTest, MinimumMultiplicities) {
  auto alg = CreateAlgorithm("RanGroupScan");
  BagIntersection bags(alg.get());
  std::vector<BagEntry> a = {{1, 3}, {2, 1}, {5, 7}, {9, 2}};
  std::vector<BagEntry> b = {{1, 1}, {5, 9}, {8, 4}, {9, 5}};
  auto pa = bags.Preprocess(a);
  auto pb = bags.Preprocess(b);
  std::vector<const PreprocessedBag*> query = {pa.get(), pb.get()};
  auto result = bags.Intersect(query);
  std::vector<BagEntry> expected = {{1, 1}, {5, 7}, {9, 2}};
  EXPECT_EQ(result, expected);
}

TEST(BagTest, MultisetInput) {
  auto alg = CreateAlgorithm("Merge");
  BagIntersection bags(alg.get());
  ElemList a = {1, 1, 1, 2, 5, 5};
  ElemList b = {1, 5, 5, 5, 6};
  auto pa = bags.PreprocessMultiset(a);
  auto pb = bags.PreprocessMultiset(b);
  std::vector<const PreprocessedBag*> query = {pa.get(), pb.get()};
  auto result = bags.Intersect(query);
  std::vector<BagEntry> expected = {{1, 1}, {5, 2}};
  EXPECT_EQ(result, expected);
}

TEST(BagTest, RandomAgainstBruteForce) {
  auto alg = CreateAlgorithm("Hybrid");
  BagIntersection bags(alg.get());
  Xoshiro256 rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    // Random bags over a small universe.
    std::map<Elem, std::uint32_t> ma, mb, mc;
    for (int i = 0; i < 300; ++i) {
      ma[static_cast<Elem>(rng.Below(200))]++;
      mb[static_cast<Elem>(rng.Below(200))]++;
      mc[static_cast<Elem>(rng.Below(200))]++;
    }
    auto to_bag = [](const std::map<Elem, std::uint32_t>& m) {
      std::vector<BagEntry> bag;
      for (auto [e, c] : m) bag.push_back({e, c});
      return bag;
    };
    auto ba = to_bag(ma);
    auto bb = to_bag(mb);
    auto bc = to_bag(mc);
    auto pa = bags.Preprocess(ba);
    auto pb = bags.Preprocess(bb);
    auto pc = bags.Preprocess(bc);
    std::vector<const PreprocessedBag*> query = {pa.get(), pb.get(), pc.get()};
    auto result = bags.Intersect(query);
    std::vector<BagEntry> expected;
    for (auto [e, c] : ma) {
      auto itb = mb.find(e);
      auto itc = mc.find(e);
      if (itb != mb.end() && itc != mc.end()) {
        expected.push_back({e, std::min({c, itb->second, itc->second})});
      }
    }
    ASSERT_EQ(result, expected) << "trial " << trial;
  }
}

TEST(BagTest, InputValidation) {
  auto alg = CreateAlgorithm("Merge");
  BagIntersection bags(alg.get());
  std::vector<BagEntry> zero_count = {{1, 0}};
  EXPECT_THROW(bags.Preprocess(zero_count), std::invalid_argument);
  std::vector<BagEntry> unsorted = {{5, 1}, {3, 1}};
  EXPECT_THROW(bags.Preprocess(unsorted), std::invalid_argument);
  ElemList descending = {5, 3};
  EXPECT_THROW(bags.PreprocessMultiset(descending), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// t-threshold queries
// ---------------------------------------------------------------------------

class ThresholdTest : public ::testing::Test {
 protected:
  ElemList BruteForce(const std::vector<ElemList>& lists, std::size_t t) {
    std::map<Elem, std::size_t> counts;
    for (const auto& l : lists) {
      for (Elem x : l) ++counts[x];
    }
    ElemList out;
    for (auto [x, c] : counts) {
      if (c >= t) out.push_back(x);
    }
    return out;
  }
};

TEST_F(ThresholdTest, AllThresholdsAgainstBruteForce) {
  RanGroupScanIntersection scan;
  ThresholdIntersection thresh(&scan);
  Xoshiro256 rng(92);
  auto lists = GenerateUniformSets(4, 800, 1 << 12, rng);
  std::vector<std::unique_ptr<PreprocessedSet>> owned;
  std::vector<const PreprocessedSet*> views;
  for (const auto& l : lists) {
    owned.push_back(scan.Preprocess(l));
    views.push_back(owned.back().get());
  }
  for (std::size_t t = 1; t <= 4; ++t) {
    EXPECT_EQ(thresh.AtLeast(views, t), BruteForce(lists, t)) << "t=" << t;
  }
}

TEST_F(ThresholdTest, ThresholdOneIsUnion) {
  RanGroupScanIntersection scan;
  ThresholdIntersection thresh(&scan);
  ElemList a = {1, 3, 5};
  ElemList b = {2, 3, 8};
  auto pa = scan.Preprocess(a);
  auto pb = scan.Preprocess(b);
  std::vector<const PreprocessedSet*> views = {pa.get(), pb.get()};
  EXPECT_EQ(thresh.AtLeast(views, 1), (ElemList{1, 2, 3, 5, 8}));
  EXPECT_EQ(thresh.AtLeast(views, 2), (ElemList{3}));
}

TEST_F(ThresholdTest, SkewedSizes) {
  RanGroupScanIntersection scan;
  ThresholdIntersection thresh(&scan);
  Xoshiro256 rng(93);
  std::vector<ElemList> lists = {SampleSortedSet(20, 1 << 14, rng),
                                 SampleSortedSet(2000, 1 << 14, rng),
                                 SampleSortedSet(6000, 1 << 14, rng)};
  std::vector<std::unique_ptr<PreprocessedSet>> owned;
  std::vector<const PreprocessedSet*> views;
  for (const auto& l : lists) {
    owned.push_back(scan.Preprocess(l));
    views.push_back(owned.back().get());
  }
  for (std::size_t t = 1; t <= 3; ++t) {
    EXPECT_EQ(thresh.AtLeast(views, t), BruteForce(lists, t)) << "t=" << t;
  }
}

TEST_F(ThresholdTest, RejectsBadThreshold) {
  RanGroupScanIntersection scan;
  ThresholdIntersection thresh(&scan);
  ElemList a = {1};
  auto pa = scan.Preprocess(a);
  std::vector<const PreprocessedSet*> views = {pa.get()};
  EXPECT_THROW(thresh.AtLeast(views, 0), std::invalid_argument);
  EXPECT_THROW(thresh.AtLeast(views, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerializationTest, SaveLoadRoundTripPreservesQueries) {
  RanGroupScanIntersection alg;
  Xoshiro256 rng(94);
  auto lists = GenerateIntersectingSets({2000, 5000, 9000}, 17, 1 << 22, rng);
  std::vector<std::unique_ptr<PreprocessedSet>> owned;
  std::vector<const ScanSet*> scan_sets;
  std::vector<const PreprocessedSet*> views;
  for (const auto& l : lists) {
    owned.push_back(alg.Preprocess(l));
    views.push_back(owned.back().get());
    scan_sets.push_back(&As<ScanSet>(*owned.back()));
  }
  ElemList before;
  alg.Intersect(views, &before);

  std::stringstream buffer;
  StructureSerializer::Save(scan_sets, buffer);
  auto loaded = StructureSerializer::Load(buffer, alg.m());
  ASSERT_EQ(loaded.size(), 3u);
  std::vector<const PreprocessedSet*> loaded_views;
  for (const auto& s : loaded) loaded_views.push_back(s.get());
  ElemList after;
  alg.Intersect(loaded_views, &after);
  EXPECT_EQ(after, before);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i]->size(), owned[i]->size());
  }
}

TEST(SerializationTest, RejectsWrongM) {
  RanGroupScanIntersection alg;
  ElemList set = {1, 2, 3};
  auto pre = alg.Preprocess(set);
  std::stringstream buffer;
  StructureSerializer::Save({&As<ScanSet>(*pre)}, buffer);
  EXPECT_THROW(StructureSerializer::Load(buffer, alg.m() + 1),
               std::runtime_error);
}

TEST(SerializationTest, RejectsBadMagicAndCorruption) {
  std::stringstream garbage("this is not a structure file at all........");
  EXPECT_THROW(StructureSerializer::Load(garbage, 4), std::runtime_error);

  RanGroupScanIntersection alg;
  Xoshiro256 rng(95);
  ElemList set = SampleSortedSet(500, 1 << 16, rng);
  auto pre = alg.Preprocess(set);
  std::stringstream buffer;
  StructureSerializer::Save({&As<ScanSet>(*pre)}, buffer);
  std::string bytes = buffer.str();
  bytes[bytes.size() / 2] ^= 0x5A;  // flip payload bits
  std::stringstream corrupted(bytes);
  EXPECT_THROW(StructureSerializer::Load(corrupted, alg.m()),
               std::runtime_error);

  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(StructureSerializer::Load(truncated, alg.m()),
               std::runtime_error);
}

TEST(SerializationTest, EmptySetRoundTrip) {
  RanGroupScanIntersection alg;
  ElemList empty;
  auto pre = alg.Preprocess(empty);
  std::stringstream buffer;
  StructureSerializer::Save({&As<ScanSet>(*pre)}, buffer);
  auto loaded = StructureSerializer::Load(buffer, alg.m());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0]->size(), 0u);
}

}  // namespace
}  // namespace fsi
