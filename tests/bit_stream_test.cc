#include "codec/bit_stream.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fsi {
namespace {

TEST(BitStreamTest, SingleBits) {
  BitWriter w;
  std::vector<bool> bits = {true, false, true, true, false, false, true};
  for (bool b : bits) w.WriteBit(b);
  EXPECT_EQ(w.BitCount(), bits.size());
  BitReader r(w.buffer());
  for (bool b : bits) EXPECT_EQ(r.ReadBit(), b);
}

TEST(BitStreamTest, FixedWidthRoundTrip) {
  BitWriter w;
  Xoshiro256 rng(17);
  std::vector<std::pair<std::uint64_t, int>> fields;
  for (int i = 0; i < 5000; ++i) {
    int bits = 1 + static_cast<int>(rng.Below(64));
    std::uint64_t mask =
        bits == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
    std::uint64_t v = rng.Next() & mask;
    fields.emplace_back(v, bits);
    w.Write(v, bits);
  }
  BitReader r(w.buffer());
  for (auto [v, bits] : fields) {
    EXPECT_EQ(r.Read(bits), v);
  }
}

TEST(BitStreamTest, ZeroWidthWriteIsNoop) {
  BitWriter w;
  w.Write(0, 0);
  EXPECT_EQ(w.BitCount(), 0u);
  w.Write(5, 3);
  w.Write(0, 0);
  w.Write(2, 2);
  BitReader r(w.buffer());
  EXPECT_EQ(r.Read(3), 5u);
  EXPECT_EQ(r.Read(2), 2u);
}

TEST(BitStreamTest, UnaryRoundTrip) {
  BitWriter w;
  std::vector<std::uint64_t> values = {0, 1, 2, 7, 63, 64, 65, 200, 1000};
  for (auto v : values) w.WriteUnary(v);
  BitReader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.ReadUnary(), v);
}

TEST(BitStreamTest, UnaryBitLength) {
  BitWriter w;
  w.WriteUnary(5);
  EXPECT_EQ(w.BitCount(), 6u);  // five zeros + terminating one
}

TEST(BitStreamTest, MixedFieldsAcrossWordBoundaries) {
  // Force fields to straddle the 64-bit word boundary.
  BitWriter w;
  w.Write(0x1FFFFFFFFFFFFFFFULL, 61);
  w.Write(0x2A, 6);    // straddles bit 61..66
  w.Write(0x3FF, 10);  // second word
  BitReader r(w.buffer());
  EXPECT_EQ(r.Read(61), 0x1FFFFFFFFFFFFFFFULL);
  EXPECT_EQ(r.Read(6), 0x2Au);
  EXPECT_EQ(r.Read(10), 0x3FFu);
}

TEST(BitStreamTest, SkipAdvancesCursor) {
  BitWriter w;
  w.Write(0xAB, 8);
  w.Write(0xCD, 8);
  w.Write(0xEF, 8);
  BitReader r(w.buffer());
  r.Skip(8);
  EXPECT_EQ(r.Read(8), 0xCDu);
  r.Skip(0);
  EXPECT_EQ(r.Read(8), 0xEFu);
}

TEST(BitStreamTest, PositionTracking) {
  BitWriter w;
  w.Write(1, 1);
  w.Write(0x7F, 7);
  BitReader r(w.buffer());
  EXPECT_EQ(r.position(), 0u);
  r.Read(1);
  EXPECT_EQ(r.position(), 1u);
  r.Read(7);
  EXPECT_EQ(r.position(), 8u);
}

TEST(BitStreamTest, SizeInWords) {
  BitWriter w;
  EXPECT_EQ(w.SizeInWords(), 0u);
  w.Write(1, 1);
  EXPECT_EQ(w.SizeInWords(), 1u);
  w.Write(0, 63);
  EXPECT_EQ(w.SizeInWords(), 1u);
  w.Write(1, 1);
  EXPECT_EQ(w.SizeInWords(), 2u);
}

TEST(BitStreamTest, LongUnaryAcrossManyWords) {
  BitWriter w;
  w.WriteUnary(500);  // spans ~8 words of zeros
  w.Write(0x5, 3);
  BitReader r(w.buffer());
  EXPECT_EQ(r.ReadUnary(), 500u);
  EXPECT_EQ(r.Read(3), 5u);
}

}  // namespace
}  // namespace fsi
