#include "codec/elias.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codec/bit_stream.h"
#include "util/rng.h"

namespace fsi {
namespace {

TEST(EliasTest, GammaKnownCodes) {
  // gamma(1) = "1" (1 bit); gamma(2) = "01 0"; gamma(5) = "001 01".
  BitWriter w;
  WriteGamma(w, 1);
  EXPECT_EQ(w.BitCount(), 1u);
  BitWriter w2;
  WriteGamma(w2, 2);
  EXPECT_EQ(w2.BitCount(), 3u);
  BitWriter w5;
  WriteGamma(w5, 5);
  EXPECT_EQ(w5.BitCount(), 5u);
}

TEST(EliasTest, GammaRoundTripExhaustiveSmall) {
  BitWriter w;
  for (std::uint64_t x = 1; x <= 4096; ++x) WriteGamma(w, x);
  BitReader r(w.buffer());
  for (std::uint64_t x = 1; x <= 4096; ++x) EXPECT_EQ(ReadGamma(r), x);
}

TEST(EliasTest, DeltaRoundTripExhaustiveSmall) {
  BitWriter w;
  for (std::uint64_t x = 1; x <= 4096; ++x) WriteDelta(w, x);
  BitReader r(w.buffer());
  for (std::uint64_t x = 1; x <= 4096; ++x) EXPECT_EQ(ReadDelta(r), x);
}

TEST(EliasTest, RoundTripRandomLarge) {
  Xoshiro256 rng(23);
  std::vector<std::uint64_t> values;
  BitWriter wg;
  BitWriter wd;
  for (int i = 0; i < 20000; ++i) {
    // Mix magnitudes: spread across 1..2^50.
    int bits = 1 + static_cast<int>(rng.Below(50));
    std::uint64_t v = 1 + (rng.Next() >> (64 - bits));
    values.push_back(v);
    WriteGamma(wg, v);
    WriteDelta(wd, v);
  }
  BitReader rg(wg.buffer());
  BitReader rd(wd.buffer());
  for (std::uint64_t v : values) {
    EXPECT_EQ(ReadGamma(rg), v);
    EXPECT_EQ(ReadDelta(rd), v);
  }
}

TEST(EliasTest, BitLengthAccountingMatchesWriter) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = 1 + rng.Below(1 << 30);
    BitWriter wg;
    WriteGamma(wg, v);
    EXPECT_EQ(wg.BitCount(), static_cast<std::size_t>(GammaBits(v)));
    BitWriter wd;
    WriteDelta(wd, v);
    EXPECT_EQ(wd.BitCount(), static_cast<std::size_t>(DeltaBits(v)));
  }
}

TEST(EliasTest, DeltaShorterThanGammaForLargeValues) {
  EXPECT_LT(DeltaBits(1 << 20), GammaBits(1 << 20));
  EXPECT_LT(DeltaBits(1ULL << 40), GammaBits(1ULL << 40));
}

TEST(EliasTest, GammaShorterForTinyValues) {
  EXPECT_LE(GammaBits(1), DeltaBits(1));
  EXPECT_LE(GammaBits(2), DeltaBits(2));
}

TEST(EliasTest, GapStreamRoundTrip) {
  Xoshiro256 rng(31);
  std::vector<std::uint64_t> sorted;
  std::uint64_t cur = 0;
  for (int i = 0; i < 5000; ++i) {
    cur += 1 + rng.Below(1000);
    sorted.push_back(cur);
  }
  BitWriter w;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    WriteDelta(w, sorted[i] - prev + (i == 0 ? 1 : 0));
    prev = sorted[i];
  }
  BitReader r(w.buffer());
  prev = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    prev += ReadDelta(r) - (i == 0 ? 1 : 0);
    EXPECT_EQ(prev, sorted[i]);
  }
}

}  // namespace
}  // namespace fsi
