#include "hash/feistel.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "util/rng.h"

namespace fsi {
namespace {

TEST(FeistelTest, RejectsInvalidDomain) {
  EXPECT_THROW(FeistelPermutation(3, 1), std::invalid_argument);
  EXPECT_THROW(FeistelPermutation(0, 1), std::invalid_argument);
  EXPECT_THROW(FeistelPermutation(66, 1), std::invalid_argument);
  EXPECT_NO_THROW(FeistelPermutation(2, 1));
  EXPECT_NO_THROW(FeistelPermutation(64, 1));
}

TEST(FeistelTest, IsABijectionOnSmallDomains) {
  for (int bits : {2, 4, 8, 12, 16}) {
    FeistelPermutation g(bits, 0xdeadbeef);
    std::uint64_t domain = std::uint64_t{1} << bits;
    std::vector<bool> hit(domain, false);
    for (std::uint64_t x = 0; x < domain; ++x) {
      std::uint64_t y = g.Apply(x);
      ASSERT_LT(y, domain) << "output outside domain, bits=" << bits;
      ASSERT_FALSE(hit[y]) << "collision at bits=" << bits;
      hit[y] = true;
    }
  }
}

TEST(FeistelTest, InvertRoundTripsSmallDomain) {
  FeistelPermutation g(16, 42);
  for (std::uint64_t x = 0; x < (1u << 16); ++x) {
    EXPECT_EQ(g.Invert(g.Apply(x)), x);
  }
}

TEST(FeistelTest, InvertRoundTrips32And64Bits) {
  FeistelPermutation g32(32, 7);
  FeistelPermutation g64(64, 7);
  Xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t x32 = rng.Next() & 0xFFFFFFFFu;
    EXPECT_EQ(g32.Invert(g32.Apply(x32)), x32);
    std::uint64_t x64 = rng.Next();
    EXPECT_EQ(g64.Invert(g64.Apply(x64)), x64);
  }
}

TEST(FeistelTest, DifferentSeedsGiveDifferentPermutations) {
  FeistelPermutation a(32, 1);
  FeistelPermutation b(32, 2);
  int differing = 0;
  for (std::uint64_t x = 0; x < 256; ++x) {
    if (a.Apply(x) != b.Apply(x)) ++differing;
  }
  EXPECT_GT(differing, 250);  // near-certain disagreement
}

TEST(FeistelTest, PrefixMatchesTopBits) {
  FeistelPermutation g(32, 11);
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t x = rng.Next() & 0xFFFFFFFFu;
    std::uint64_t y = g.Apply(x);
    for (int t : {0, 1, 5, 13, 32}) {
      EXPECT_EQ(g.Prefix(x, t), t == 0 ? 0 : (y >> (32 - t)));
    }
  }
}

TEST(FeistelTest, PrefixPartitionIsBalanced) {
  // Group sizes under g_t should concentrate around n / 2^t
  // (Proposition A.2's premise).
  FeistelPermutation g(32, 99);
  const int t = 6;  // 64 groups
  std::vector<int> counts(1 << t, 0);
  const int n = 1 << 16;
  for (int x = 0; x < n; ++x) {
    ++counts[g.Prefix(static_cast<std::uint64_t>(x), t)];
  }
  double expected = static_cast<double>(n) / (1 << t);
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.7);
    EXPECT_LT(c, expected * 1.3);
  }
}

TEST(FeistelTest, DomainSize) {
  EXPECT_EQ(FeistelPermutation(8, 1).domain_size(), 256u);
  EXPECT_EQ(FeistelPermutation(32, 1).domain_size(), 1ULL << 32);
}

}  // namespace
}  // namespace fsi
