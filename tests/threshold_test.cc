// Unit tests for core/threshold.h: t-of-k threshold queries over
// RanGroupScan structures.
//
// ThresholdIntersection is the engine behind Expr::AtLeast's grouped fast
// path (api/expr.h), so these tests pin down its boundary behaviour
// directly against a count-based oracle: t in {0, 1, k, k+1}, single-set
// and empty-set inputs, duplicate sets (every merge step ties), and
// randomized workloads across resolutions so groups share block edges.
// FSI_STRESS_ITERS multiplies the randomized iteration count (nightly CI
// runs 10) with fixed per-iteration seeds.

#include "core/threshold.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/ran_group_scan.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

std::size_t StressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

/// Elements appearing in at least `threshold` of `lists`, by counting.
ElemList Oracle(const std::vector<ElemList>& lists, std::size_t threshold) {
  std::map<Elem, std::size_t> counts;
  for (const ElemList& list : lists) {
    for (Elem e : list) ++counts[e];
  }
  ElemList out;
  for (const auto& [elem, count] : counts) {
    if (count >= threshold) out.push_back(elem);
  }
  return out;
}

/// Preprocesses every list and runs AtLeast(threshold) on the result.
class ThresholdFixture {
 public:
  explicit ThresholdFixture(const std::vector<ElemList>& lists)
      : threshold_(&alg_) {
    for (const ElemList& list : lists) {
      owned_.push_back(alg_.Preprocess(list));
      sets_.push_back(owned_.back().get());
    }
  }

  ElemList AtLeast(std::size_t t) const { return threshold_.AtLeast(sets_, t); }

 private:
  RanGroupScanIntersection alg_;
  ThresholdIntersection threshold_;
  std::vector<std::unique_ptr<PreprocessedSet>> owned_;
  std::vector<const PreprocessedSet*> sets_;
};

TEST(ThresholdTest, ThresholdZeroThrows) {
  ThresholdFixture fx({{1, 2, 3}, {2, 3, 4}});
  EXPECT_THROW(fx.AtLeast(0), std::invalid_argument);
}

TEST(ThresholdTest, ThresholdAboveKThrows) {
  ThresholdFixture fx({{1, 2, 3}, {2, 3, 4}});
  EXPECT_THROW(fx.AtLeast(3), std::invalid_argument);
}

TEST(ThresholdTest, NoSetsThrows) {
  ThresholdFixture fx({});
  EXPECT_THROW(fx.AtLeast(1), std::invalid_argument);
}

TEST(ThresholdTest, SingleSetIsIdentity) {
  ElemList set = {5, 9, 100, 4096, 1u << 30};
  ThresholdFixture fx({set});
  EXPECT_EQ(fx.AtLeast(1), set);
}

TEST(ThresholdTest, SingleEmptySet) {
  ThresholdFixture fx({ElemList{}});
  EXPECT_TRUE(fx.AtLeast(1).empty());
}

TEST(ThresholdTest, AllEmptySets) {
  ThresholdFixture fx({ElemList{}, ElemList{}, ElemList{}});
  for (std::size_t t = 1; t <= 3; ++t) {
    EXPECT_TRUE(fx.AtLeast(t).empty()) << "t=" << t;
  }
}

TEST(ThresholdTest, EmptySetsAmongInputs) {
  // Empty sets count toward k but never toward an element's tally.
  std::vector<ElemList> lists = {{1, 2, 3}, {}, {2, 3, 4}, {}};
  ThresholdFixture fx(lists);
  for (std::size_t t = 1; t <= 4; ++t) {
    EXPECT_EQ(fx.AtLeast(t), Oracle(lists, t)) << "t=" << t;
  }
}

TEST(ThresholdTest, ThresholdOneIsUnion) {
  std::vector<ElemList> lists = {{1, 5, 9}, {2, 5, 10}, {9, 10, 11}};
  ThresholdFixture fx(lists);
  EXPECT_EQ(fx.AtLeast(1), Oracle(lists, 1));
}

TEST(ThresholdTest, ThresholdKIsIntersection) {
  std::vector<ElemList> lists = {{1, 5, 9, 20}, {2, 5, 9, 10}, {5, 9, 10, 11}};
  ThresholdFixture fx(lists);
  EXPECT_EQ(fx.AtLeast(3), (ElemList{5, 9}));
}

TEST(ThresholdTest, DuplicateSetsTieEverywhere) {
  // Identical sets: every count-merge head ties across all k cursors, and
  // every threshold from 1 to k returns the set itself.
  Xoshiro256 rng(7);
  ElemList set = SampleSortedSet(500, 1 << 20, rng);
  ThresholdFixture fx({set, set, set, set});
  for (std::size_t t = 1; t <= 4; ++t) {
    EXPECT_EQ(fx.AtLeast(t), set) << "t=" << t;
  }
}

TEST(ThresholdTest, MixedResolutions) {
  // Very different set sizes force different resolutions t_i, so the
  // census walks coarse groups spanning many fine windows — block-edge
  // handling is exercised at every window boundary.
  Xoshiro256 rng(11);
  std::vector<ElemList> lists = {
      SampleSortedSet(6, 1 << 24, rng),     // resolution 0 (single group)
      SampleSortedSet(300, 1 << 24, rng),   // mid resolution
      SampleSortedSet(20000, 1 << 24, rng)  // fine resolution
  };
  // Force overlaps so thresholds >= 2 are non-trivially populated.
  lists[1].insert(lists[1].end(), lists[0].begin(), lists[0].end());
  lists[2].insert(lists[2].end(), lists[1].begin(), lists[1].end());
  for (ElemList& l : lists) {
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
  }
  ThresholdFixture fx(lists);
  for (std::size_t t = 1; t <= 3; ++t) {
    EXPECT_EQ(fx.AtLeast(t), Oracle(lists, t)) << "t=" << t;
  }
}

TEST(ThresholdTest, DenseSmallUniverse) {
  // Universe barely larger than the sets: every group is full and the
  // window census never prunes, hitting the merge path exhaustively.
  Xoshiro256 rng(13);
  std::vector<ElemList> lists;
  for (int i = 0; i < 5; ++i) lists.push_back(SampleSortedSet(180, 256, rng));
  ThresholdFixture fx(lists);
  for (std::size_t t = 1; t <= 5; ++t) {
    EXPECT_EQ(fx.AtLeast(t), Oracle(lists, t)) << "t=" << t;
  }
}

TEST(ThresholdTest, RandomizedAgainstOracle) {
  const std::size_t iters = 6 * StressIters();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    Xoshiro256 rng(100 + iter);
    const std::size_t k = 2 + rng.Next() % 5;
    const std::size_t universe =
        (iter % 2 == 0) ? (1u << 14) : (1u << 24);  // dense and sparse
    std::vector<ElemList> lists;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t n = rng.Next() % 2000;
      lists.push_back(SampleSortedSet(n, universe, rng));
    }
    ThresholdFixture fx(lists);
    for (std::size_t t = 1; t <= k; ++t) {
      ASSERT_EQ(fx.AtLeast(t), Oracle(lists, t))
          << "iter=" << iter << " k=" << k << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace fsi
