#include "container/skip_list.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

TEST(SkipListTest, EmptyList) {
  SkipList<std::uint32_t> list;
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.Contains(5));
  EXPECT_EQ(list.SeekGreaterEqual(0), 0u);
}

TEST(SkipListTest, SingleElement) {
  std::vector<std::uint32_t> keys = {42};
  SkipList<std::uint32_t> list(keys);
  EXPECT_TRUE(list.Contains(42));
  EXPECT_FALSE(list.Contains(41));
  EXPECT_EQ(list.SeekGreaterEqual(42), 0u);
  EXPECT_EQ(list.SeekGreaterEqual(43), 1u);  // == size(): not found
  EXPECT_EQ(list.SeekGreaterEqual(0), 0u);
}

TEST(SkipListTest, SeekSemanticsExhaustive) {
  std::vector<std::uint32_t> keys = {2, 4, 8, 16, 32, 64};
  SkipList<std::uint32_t> list(keys);
  for (std::uint32_t x = 0; x <= 70; ++x) {
    std::uint32_t expected = 0;
    while (expected < keys.size() && keys[expected] < x) ++expected;
    EXPECT_EQ(list.SeekGreaterEqual(x), expected) << "x=" << x;
  }
}

TEST(SkipListTest, ContainsLargeRandom) {
  Xoshiro256 rng(61);
  ElemList keys = SampleSortedSet(20000, 1 << 24, rng);
  SkipList<Elem> list(keys);
  for (std::size_t i = 0; i < keys.size(); i += 37) {
    ASSERT_TRUE(list.Contains(keys[i]));
  }
  // Values between neighbours must be absent.
  for (std::size_t i = 1; i < keys.size(); i += 53) {
    if (keys[i] > keys[i - 1] + 1) {
      ASSERT_FALSE(list.Contains(keys[i] - 1));
    }
  }
}

TEST(SkipListTest, HintShortCircuit) {
  std::vector<std::uint32_t> keys = {10, 20, 30, 40, 50};
  SkipList<std::uint32_t> list(keys);
  // If the hinted node already satisfies the query, it is returned as-is.
  EXPECT_EQ(list.SeekGreaterEqual(15, 1), 1u);  // node 1 = 20 >= 15
  EXPECT_EQ(list.SeekGreaterEqual(20, 1), 1u);
  // Otherwise a full search runs.
  EXPECT_EQ(list.SeekGreaterEqual(45, 1), 4u);
}

TEST(SkipListTest, KeysAccessibleInOrder) {
  Xoshiro256 rng(67);
  ElemList keys = SampleSortedSet(5000, 1 << 20, rng);
  SkipList<Elem> list(keys);
  ASSERT_EQ(list.size(), keys.size());
  for (std::uint32_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list.key(i), keys[i]);
  }
}

TEST(SkipListTest, SpaceIsLinear) {
  Xoshiro256 rng(71);
  ElemList keys = SampleSortedSet(10000, 1 << 24, rng);
  SkipList<Elem> list(keys);
  // keys (0.5 w/elem) + ~2 tower pointers/elem (0.5 w each) + offsets.
  EXPECT_LT(list.SizeInWords(), keys.size() * 3);
}

}  // namespace
}  // namespace fsi
