#include "container/skip_list.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "container/concurrent_skip_list.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

TEST(SkipListTest, EmptyList) {
  SkipList<std::uint32_t> list;
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.Contains(5));
  EXPECT_EQ(list.SeekGreaterEqual(0), 0u);
}

TEST(SkipListTest, SingleElement) {
  std::vector<std::uint32_t> keys = {42};
  SkipList<std::uint32_t> list(keys);
  EXPECT_TRUE(list.Contains(42));
  EXPECT_FALSE(list.Contains(41));
  EXPECT_EQ(list.SeekGreaterEqual(42), 0u);
  EXPECT_EQ(list.SeekGreaterEqual(43), 1u);  // == size(): not found
  EXPECT_EQ(list.SeekGreaterEqual(0), 0u);
}

TEST(SkipListTest, SeekSemanticsExhaustive) {
  std::vector<std::uint32_t> keys = {2, 4, 8, 16, 32, 64};
  SkipList<std::uint32_t> list(keys);
  for (std::uint32_t x = 0; x <= 70; ++x) {
    std::uint32_t expected = 0;
    while (expected < keys.size() && keys[expected] < x) ++expected;
    EXPECT_EQ(list.SeekGreaterEqual(x), expected) << "x=" << x;
  }
}

TEST(SkipListTest, ContainsLargeRandom) {
  Xoshiro256 rng(61);
  ElemList keys = SampleSortedSet(20000, 1 << 24, rng);
  SkipList<Elem> list(keys);
  for (std::size_t i = 0; i < keys.size(); i += 37) {
    ASSERT_TRUE(list.Contains(keys[i]));
  }
  // Values between neighbours must be absent.
  for (std::size_t i = 1; i < keys.size(); i += 53) {
    if (keys[i] > keys[i - 1] + 1) {
      ASSERT_FALSE(list.Contains(keys[i] - 1));
    }
  }
}

TEST(SkipListTest, HintShortCircuit) {
  std::vector<std::uint32_t> keys = {10, 20, 30, 40, 50};
  SkipList<std::uint32_t> list(keys);
  // If the hinted node already satisfies the query, it is returned as-is.
  EXPECT_EQ(list.SeekGreaterEqual(15, 1), 1u);  // node 1 = 20 >= 15
  EXPECT_EQ(list.SeekGreaterEqual(20, 1), 1u);
  // Otherwise a full search runs.
  EXPECT_EQ(list.SeekGreaterEqual(45, 1), 4u);
}

TEST(SkipListTest, KeysAccessibleInOrder) {
  Xoshiro256 rng(67);
  ElemList keys = SampleSortedSet(5000, 1 << 20, rng);
  SkipList<Elem> list(keys);
  ASSERT_EQ(list.size(), keys.size());
  for (std::uint32_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list.key(i), keys[i]);
  }
}

TEST(SkipListTest, SpaceIsLinear) {
  Xoshiro256 rng(71);
  ElemList keys = SampleSortedSet(10000, 1 << 24, rng);
  SkipList<Elem> list(keys);
  // keys (0.5 w/elem) + ~2 tower pointers/elem (0.5 w each) + offsets.
  EXPECT_LT(list.SizeInWords(), keys.size() * 3);
}

// ---------------------------------------------------------------------------
// ConcurrentSkipList (container/concurrent_skip_list.h): the lock-free
// mark-before-unlink sibling backing the mutable-set delta tier.  The
// single-threaded tests pin the sequential semantics; the threaded ones
// drive the CAS races directly (run them under the tsan preset for full
// race checking — they are also functional tests in any build).
// ---------------------------------------------------------------------------

std::size_t SkipStressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

TEST(ConcurrentSkipListTest, SequentialInsertEraseContains) {
  ConcurrentSkipList<Elem> list;
  EXPECT_EQ(list.SizeSlow(), 0u);
  EXPECT_FALSE(list.Contains(7));
  EXPECT_FALSE(list.Erase(7));  // erase of a missing key is a no-op
  EXPECT_TRUE(list.Insert(7));
  EXPECT_FALSE(list.Insert(7));  // duplicate insert rejected
  EXPECT_TRUE(list.Contains(7));
  EXPECT_EQ(list.SizeSlow(), 1u);
  EXPECT_TRUE(list.Erase(7));
  EXPECT_FALSE(list.Erase(7));  // second erase loses
  EXPECT_FALSE(list.Contains(7));
  EXPECT_TRUE(list.Insert(7));  // reinsert after erase
  EXPECT_TRUE(list.Contains(7));
}

TEST(ConcurrentSkipListTest, SequentialRandomDifferential) {
  ConcurrentSkipList<Elem> list;
  std::set<Elem> model;
  Xoshiro256 rng(0x5eedULL);
  for (std::size_t op = 0; op < 5000; ++op) {
    Elem x = static_cast<Elem>(rng.Below(512));
    switch (rng.Below(3)) {
      case 0:
        EXPECT_EQ(list.Insert(x), model.insert(x).second);
        break;
      case 1:
        EXPECT_EQ(list.Erase(x), model.erase(x) > 0);
        break;
      case 2:
        EXPECT_EQ(list.Contains(x), model.count(x) > 0);
        break;
    }
  }
  EXPECT_EQ(list.SizeSlow(), model.size());
  for (Elem x = 0; x < 512; ++x) {
    EXPECT_EQ(list.Contains(x), model.count(x) > 0) << x;
  }
}

TEST(ConcurrentSkipListTest, SameKeyEraseRaceHasExactlyOneWinner) {
  const std::size_t keys = 300 * SkipStressIters();
  constexpr std::size_t kThreads = 4;
  ConcurrentSkipList<Elem> list;
  for (Elem k = 0; k < keys; ++k) ASSERT_TRUE(list.Insert(k));
  std::vector<std::size_t> wins(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // All threads contend on the same key sequence: the level-0 mark
        // CAS must hand each deletion to exactly one of them.
        for (Elem k = 0; k < keys; ++k) {
          if (list.Erase(k)) ++wins[t];
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::size_t total = 0;
  for (std::size_t w : wins) total += w;
  EXPECT_EQ(total, keys);
  EXPECT_EQ(list.SizeSlow(), 0u);
  for (Elem k = 0; k < keys; ++k) EXPECT_FALSE(list.Contains(k));
}

TEST(ConcurrentSkipListTest, SameKeyInsertRaceHasExactlyOneWinner) {
  const std::size_t keys = 300 * SkipStressIters();
  constexpr std::size_t kThreads = 4;
  ConcurrentSkipList<Elem> list;
  std::vector<std::size_t> wins(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (Elem k = 0; k < keys; ++k) {
          if (list.Insert(k)) ++wins[t];
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::size_t total = 0;
  for (std::size_t w : wins) total += w;
  EXPECT_EQ(total, keys);
  EXPECT_EQ(list.SizeSlow(), keys);
}

TEST(ConcurrentSkipListTest, EraseVersusLookupNeverShowsTornState) {
  // A writer repeatedly removes and reinstates the odd keys while readers
  // verify two invariants at every probe: even keys are always present,
  // and out-of-range keys never appear.  A reader observing a half
  // unlinked node (reachable at an upper level after its level-0 mark,
  // say) would break the first invariant.
  const std::size_t rounds = 400 * SkipStressIters();
  constexpr Elem kKeys = 128;
  ConcurrentSkipList<Elem> list;
  for (Elem k = 0; k < kKeys; ++k) ASSERT_TRUE(list.Insert(k));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(0xabc0 + static_cast<std::uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        Elem even = static_cast<Elem>(rng.Below(kKeys / 2)) * 2;
        EXPECT_TRUE(list.Contains(even));
        EXPECT_FALSE(list.Contains(kKeys + static_cast<Elem>(rng.Below(64))));
        list.Contains(even + 1);  // odd keys flicker; value is untestable
      }
    });
  }
  std::thread writer([&] {
    for (std::size_t round = 0; round < rounds; ++round) {
      for (Elem k = 1; k < kKeys; k += 2) EXPECT_TRUE(list.Erase(k));
      for (Elem k = 1; k < kKeys; k += 2) EXPECT_TRUE(list.Insert(k));
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(list.SizeSlow(), static_cast<std::size_t>(kKeys));
}

TEST(ConcurrentSkipListTest, MixedChurnMatchesPerThreadModels) {
  // Disjoint per-thread key ranges: every thread replays its script into a
  // private model, and the final list must equal the union of the models.
  const std::size_t ops = 4000 * SkipStressIters();
  constexpr std::size_t kThreads = 4;
  constexpr Elem kRange = 1024;
  ConcurrentSkipList<Elem> list;
  std::vector<std::set<Elem>> models(kThreads);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(0xf00d + static_cast<std::uint64_t>(t));
        Elem lo = static_cast<Elem>(t) * kRange;
        for (std::size_t op = 0; op < ops; ++op) {
          Elem x = lo + static_cast<Elem>(rng.Below(kRange));
          if (rng.Below(2) == 0) {
            EXPECT_EQ(list.Insert(x), models[t].insert(x).second);
          } else {
            EXPECT_EQ(list.Erase(x), models[t].erase(x) > 0);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::size_t expected_size = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    expected_size += models[t].size();
    for (Elem x = 0; x < kRange; ++x) {
      Elem key = static_cast<Elem>(t) * kRange + x;
      EXPECT_EQ(list.Contains(key), models[t].count(key) > 0) << key;
    }
  }
  EXPECT_EQ(list.SizeSlow(), expected_size);
}

TEST(ConcurrentSkipListTest, RetireHookReceivesEveryErasedNode) {
  struct Tally {
    std::atomic<std::size_t> retired{0};
    static void Hook(void* context, void* node, void (*deleter)(void*)) {
      static_cast<Tally*>(context)->retired.fetch_add(
          1, std::memory_order_relaxed);
      deleter(node);  // quiescent here: single-threaded test
    }
  };
  Tally tally;
  {
    ConcurrentSkipList<Elem> list(&Tally::Hook, &tally);
    for (Elem k = 0; k < 100; ++k) ASSERT_TRUE(list.Insert(k));
    for (Elem k = 0; k < 100; k += 2) ASSERT_TRUE(list.Erase(k));
    EXPECT_EQ(tally.retired.load(), 50u);
    EXPECT_EQ(list.SizeSlow(), 50u);
  }
  EXPECT_EQ(tally.retired.load(), 50u);  // destructor frees, never retires
}

}  // namespace
}  // namespace fsi
