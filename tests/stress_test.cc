// Adversarial-distribution stress tests: the randomized-workload sweep in
// algorithm_property_test covers uniform draws; real posting lists are not
// uniform.  These tests feed every core algorithm distributions chosen to
// break common implementation shortcuts: long consecutive runs (group
// boundaries inside runs), geometric clusters (wildly uneven group fill),
// bit-aligned values (power-of-two structure interacting with prefix
// partitioning), and near-duplicate sets differing in a handful of
// elements.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/intersector.h"
#include "util/rng.h"

namespace fsi {
namespace {

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

ElemList DenseRuns(Xoshiro256& rng, std::size_t target) {
  // Alternating dense runs and long gaps.
  ElemList out;
  Elem cursor = static_cast<Elem>(rng.Below(1000));
  while (out.size() < target) {
    std::size_t run = 1 + rng.Below(300);
    for (std::size_t i = 0; i < run && out.size() < target; ++i) {
      out.push_back(cursor++);
    }
    cursor += static_cast<Elem>(1 + rng.Below(100000));
  }
  return out;
}

ElemList GeometricClusters(Xoshiro256& rng, std::size_t target) {
  // Cluster sizes and spacings spanning several orders of magnitude.
  ElemList out;
  Elem cursor = 0;
  while (out.size() < target) {
    std::size_t cluster = std::size_t{1} << rng.Below(10);
    for (std::size_t i = 0; i < cluster && out.size() < target; ++i) {
      cursor += static_cast<Elem>(1 + rng.Below(4));
      out.push_back(cursor);
    }
    cursor += static_cast<Elem>(1u << (10 + rng.Below(12)));
  }
  return out;
}

ElemList BitAligned(Xoshiro256& rng, std::size_t target) {
  // Multiples of powers of two: adversarial for prefix-based grouping and
  // multiply-shift hashing alike.
  ElemList out;
  out.reserve(target);
  Elem step = Elem{1} << (3 + rng.Below(6));
  for (std::size_t i = 0; out.size() < target; ++i) {
    out.push_back(static_cast<Elem>(i) * step);
  }
  return out;
}

using Generator = ElemList (*)(Xoshiro256&, std::size_t);

class StressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StressTest, AdversarialDistributions) {
  Generator generators[] = {DenseRuns, GeometricClusters, BitAligned};
  // Through the Engine with full validation: the generators' output is
  // re-checked, and the sweep exercises the production entry point.
  Engine engine(GetParam(), {.validation = ValidationPolicy::kFull});
  Xoshiro256 rng(0x57E55);
  for (Generator gen_a : generators) {
    for (Generator gen_b : generators) {
      std::vector<ElemList> lists = {gen_a(rng, 3000), gen_b(rng, 5000)};
      ASSERT_EQ(engine.IntersectLists(lists), GroundTruth(lists));
    }
  }
}

TEST_P(StressTest, NearDuplicateSets) {
  auto alg = CreateAlgorithm(GetParam());
  Xoshiro256 rng(0x57E56);
  ElemList base = GeometricClusters(rng, 4000);
  // Remove a scattering of elements to make an almost-identical partner.
  ElemList partner;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (rng.Below(100) > 2) partner.push_back(base[i]);
  }
  std::vector<ElemList> lists = {base, partner};
  ASSERT_EQ(alg->IntersectLists(lists), GroundTruth(lists));
}

TEST_P(StressTest, ManySeedsSmallSets) {
  // Rapid-fire differential check over many small random shapes.
  auto alg = CreateAlgorithm(GetParam());
  Xoshiro256 rng(0x57E57);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<ElemList> lists(2);
    for (auto& l : lists) {
      std::size_t n = rng.Below(60);
      Elem cursor = 0;
      for (std::size_t i = 0; i < n; ++i) {
        cursor += static_cast<Elem>(1 + rng.Below(50));
        l.push_back(cursor);
      }
    }
    ASSERT_EQ(alg->IntersectLists(lists), GroundTruth(lists)) << trial;
  }
}

TEST_P(StressTest, KWayMixedDistributions) {
  Engine engine{GetParam()};
  if (engine.max_query_sets() < 4) GTEST_SKIP();
  Xoshiro256 rng(0x57E58);
  std::vector<ElemList> lists = {
      DenseRuns(rng, 500), GeometricClusters(rng, 2000), BitAligned(rng, 4000),
      DenseRuns(rng, 8000)};
  std::vector<PreparedSet> prepared;
  for (const ElemList& l : lists) prepared.push_back(engine.Prepare(l));
  ASSERT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
  ASSERT_EQ(engine.Query(prepared).Count(), GroundTruth(lists).size());
}

std::vector<std::string> StressedAlgorithms() {
  return {"Merge",        "SkipList",      "Hash",         "BPP",
          "Lookup",       "SvS",           "Adaptive",     "BaezaYates",
          "SmallAdaptive", "IntGroup",     "RanGroup",     "RanGroupScan",
          "RanGroupScan2", "HashBin",      "Hybrid",       "Merge_Delta",
          "Lookup_Delta", "RanGroupScan_Lowbits", "RanGroupScan_Delta"};
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, StressTest,
                         ::testing::ValuesIn(StressedAlgorithms()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace fsi
