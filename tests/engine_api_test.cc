// Tests for the public Engine/PreparedSet/Query API (api/engine.h) and the
// descriptor registry (api/registry.h): ownership and misuse checking,
// sink agreement across every registered algorithm, query statistics, the
// validation policy, option-string parsing and self-registration.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/ran_group_scan.h"
#include "fsi.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

// ---------------------------------------------------------------------------
// PreparedSet ownership and misuse.
// ---------------------------------------------------------------------------

TEST(PreparedSetTest, CrossEngineMisuseThrows) {
  // Two engines over the *same* algorithm name still use independent hash
  // functions — mixing their structures was UB under the raw API and is a
  // checked error here.
  Engine e1("RanGroupScan");
  Engine e2("RanGroupScan");
  PreparedSet a = e1.Prepare(ElemList{1, 2, 3});
  PreparedSet b = e2.Prepare(ElemList{2, 3, 4});
  EXPECT_THROW(e1.Query({&a, &b}), std::invalid_argument);
  EXPECT_THROW(e2.Query({&a, &b}), std::invalid_argument);
  EXPECT_NO_THROW(e1.Query({&a}));
}

TEST(PreparedSetTest, CrossAlgorithmMisuseThrows) {
  Engine scan("RanGroupScan");
  Engine merge("Merge");
  PreparedSet a = scan.Prepare(ElemList{1, 2, 3});
  PreparedSet b = merge.Prepare(ElemList{2, 3, 4});
  EXPECT_THROW(scan.Query({&a, &b}), std::invalid_argument);
}

TEST(PreparedSetTest, EngineCopiesShareStructures) {
  Engine e1("Hybrid");
  Engine e2 = e1;  // copies share the algorithm instance
  PreparedSet a = e1.Prepare(ElemList{1, 2, 3, 7});
  PreparedSet b = e2.Prepare(ElemList{2, 7, 9});
  EXPECT_EQ(e2.Query({&a, &b}).Materialize(), (ElemList{2, 7}));
}

TEST(PreparedSetTest, EmptyHandleRejected) {
  Engine engine("Merge");
  PreparedSet empty;
  PreparedSet ok = engine.Prepare(ElemList{1, 2});
  EXPECT_TRUE(empty.empty_handle());
  EXPECT_THROW(engine.Query({&ok, &empty}), std::invalid_argument);
}

TEST(PreparedSetTest, QueryOutlivesEngineAndHandles) {
  // Query retains shared ownership of the algorithm and the structures.
  std::unique_ptr<Query> query;
  {
    Engine engine("RanGroupScan");
    PreparedSet a = engine.Prepare(ElemList{1, 5, 9, 13});
    PreparedSet b = engine.Prepare(ElemList{5, 6, 13, 20});
    query = std::make_unique<Query>(engine.Query({&a, &b}));
  }  // engine and handles destroyed
  EXPECT_EQ(query->Materialize(), (ElemList{5, 13}));
}

TEST(PreparedSetTest, HandleMetadata) {
  Engine engine("RanGroupScan");
  PreparedSet a = engine.Prepare(ElemList{1, 2, 3});
  EXPECT_EQ(a.size(), 3u);
  EXPECT_GT(a.SizeInWords(), 0u);
  EXPECT_EQ(a.algorithm_name(), "RanGroupScan");
  EXPECT_NE(a.raw(), nullptr);
}

TEST(EngineTest, ArityLimitChecked) {
  Engine engine("IntGroup");  // k == 2 only
  PreparedSet a = engine.Prepare(ElemList{1, 2});
  PreparedSet b = engine.Prepare(ElemList{2, 3});
  PreparedSet c = engine.Prepare(ElemList{2, 4});
  EXPECT_EQ(engine.max_query_sets(), 2u);
  EXPECT_THROW(engine.Query({&a, &b, &c}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sinks agree with materialized results across every registered algorithm.
// ---------------------------------------------------------------------------

class EngineSinksTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineSinksTest, AllSinksAgree) {
  Xoshiro256 rng(91);
  auto lists = GenerateIntersectingSets({400, 900, 2500}, 37, 1 << 18, rng);
  Engine engine(GetParam(), {.validation = ValidationPolicy::kFull});
  if (lists.size() > engine.max_query_sets()) {
    lists.resize(engine.max_query_sets());
  }
  ElemList expected = GroundTruth(lists);

  std::vector<PreparedSet> prepared;
  for (const ElemList& l : lists) prepared.push_back(engine.Prepare(l));

  // Materialize (ordered): exact match.
  EXPECT_EQ(engine.Query(prepared).Materialize(), expected);

  // Unordered: same set.
  ElemList unordered = engine.Query(prepared).Unordered().Materialize();
  std::sort(unordered.begin(), unordered.end());
  EXPECT_EQ(unordered, expected);

  // Count-only sink.
  EXPECT_EQ(engine.Query(prepared).Count(), expected.size());

  // CountOnly().Execute() fluent spelling.
  EXPECT_EQ(engine.Query(prepared).CountOnly().Execute().result_size,
            expected.size());

  // Visitor sink collects the same elements.
  ElemList visited;
  std::size_t n = engine.Query(prepared).Visit(
      [&visited](Elem e) { visited.push_back(e); });
  EXPECT_EQ(n, expected.size());
  EXPECT_EQ(visited, expected);

  // Early-stopping visitor.
  std::size_t seen = 0;
  engine.Query(prepared).Visit([&seen](Elem) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, std::min<std::size_t>(5, expected.size()));

  // Limit: an ordered limited query returns the first elements.
  ElemList limited = engine.Query(prepared).Limit(10).Materialize();
  std::size_t want = std::min<std::size_t>(10, expected.size());
  EXPECT_EQ(limited.size(), want);
  EXPECT_TRUE(std::equal(limited.begin(), limited.end(), expected.begin()));
  EXPECT_EQ(engine.Query(prepared).Limit(10).Count(), want);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredAlgorithms, EngineSinksTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (auto n : AlgorithmRegistry::Global().Names(/*include_hidden=*/true))
        names.emplace_back(n);
      return names;
    }()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// QueryStats.
// ---------------------------------------------------------------------------

TEST(QueryStatsTest, MonotoneAndNonZeroOnNonTrivialInput) {
  Xoshiro256 rng(5);
  auto small = GenerateIntersectingSets({2000, 3000}, 50, 1 << 20, rng);
  auto large = GenerateIntersectingSets({60000, 80000}, 500, 1 << 22, rng);
  Engine engine("RanGroupScan");

  auto run = [&engine](const std::vector<ElemList>& lists) {
    std::vector<PreparedSet> prepared;
    for (const ElemList& l : lists) prepared.push_back(engine.Prepare(l));
    Query query = engine.Query(prepared);
    query.Materialize();
    return query.stats();
  };
  QueryStats s_small = run(small);
  QueryStats s_large = run(large);

  EXPECT_EQ(s_small.num_sets, 2u);
  EXPECT_EQ(s_small.elements_scanned, 5000u);
  EXPECT_GT(s_small.groups_probed, 0u);  // grouped structure
  EXPECT_EQ(s_small.result_size, 50u);
  EXPECT_GT(s_small.wall_micros, 0.0);

  // Monotone in the workload size.
  EXPECT_GT(s_large.elements_scanned, s_small.elements_scanned);
  EXPECT_GT(s_large.groups_probed, s_small.groups_probed);
  EXPECT_GT(s_large.result_size, s_small.result_size);
}

TEST(QueryStatsTest, UngroupedAlgorithmReportsZeroGroups) {
  Engine engine("Merge");
  PreparedSet a = engine.Prepare(ElemList{1, 2, 3});
  PreparedSet b = engine.Prepare(ElemList{2, 3, 4});
  Query query = engine.Query({&a, &b});
  query.Materialize();
  EXPECT_EQ(query.stats().groups_probed, 0u);
  EXPECT_EQ(query.stats().elements_scanned, 6u);
}

TEST(QueryStatsTest, LimitCapsResultSize) {
  Engine engine("Merge");
  ElemList same;
  for (Elem i = 0; i < 1000; ++i) same.push_back(i);
  PreparedSet a = engine.Prepare(same);
  PreparedSet b = engine.Prepare(same);
  Query query = engine.Query({&a, &b});
  query.Limit(7);
  query.Materialize();
  EXPECT_EQ(query.stats().result_size, 7u);
}

// ---------------------------------------------------------------------------
// ValidationPolicy.
// ---------------------------------------------------------------------------

TEST(ValidationPolicyTest, FullPolicyRejectsInvalidInputInAnyBuild) {
  // The satellite guarantee: even in Release (where the default skips the
  // O(n) scan), an Engine with kFull still rejects bad input.
  for (const char* name : {"Merge", "RanGroupScan", "Hybrid", "Merge_Gamma"}) {
    Engine engine(name, {.validation = ValidationPolicy::kFull});
    EXPECT_TRUE(engine.validation_enabled()) << name;
    EXPECT_THROW(engine.Prepare(ElemList{3, 1, 2}), std::invalid_argument)
        << name;
    EXPECT_THROW(engine.Prepare(ElemList{1, 1, 2}), std::invalid_argument)
        << name;
    EXPECT_NO_THROW(engine.Prepare(ElemList{1, 2, 3})) << name;
  }
}

TEST(ValidationPolicyTest, DefaultPolicyFollowsBuildType) {
  Engine engine("Merge");  // kDefault
#ifdef NDEBUG
  EXPECT_FALSE(engine.validation_enabled());
#else
  EXPECT_TRUE(engine.validation_enabled());
  EXPECT_THROW(engine.Prepare(ElemList{3, 1, 2}), std::invalid_argument);
#endif
}

TEST(ValidationPolicyTest, OffPolicySkipsValidation) {
  Engine engine("Merge", {.validation = ValidationPolicy::kOff});
  EXPECT_FALSE(engine.validation_enabled());
  EXPECT_NO_THROW(engine.Prepare(ElemList{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Registry: option strings, errors, self-registration.
// ---------------------------------------------------------------------------

TEST(RegistryOptionsTest, OptionStringConfiguresAlgorithm) {
  auto alg = AlgorithmRegistry::Global().Create("RanGroupScan:m=2,w=4");
  auto* scan = dynamic_cast<RanGroupScanIntersection*>(alg.get());
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->m(), 2);
}

TEST(RegistryOptionsTest, OptionSpecsProduceCorrectResults) {
  Xoshiro256 rng(17);
  auto lists = GenerateIntersectingSets({1500, 2500}, 31, 1 << 20, rng);
  ElemList expected = GroundTruth(lists);
  for (const char* spec :
       {"RanGroupScan:m=2,w=4", "RanGroupScan:m=1,w=16,memoize=0",
        "Hybrid:skew_threshold=32", "IntGroup:s=16", "Lookup:bucket=64",
        "RanGroupScan_Gamma:m=2", "Merge:seed=42",
        "RanGroup:single_resolution=1"}) {
    SCOPED_TRACE(spec);
    Engine engine{spec};
    EXPECT_EQ(engine.IntersectLists(lists), expected);
  }
}

TEST(RegistryOptionsTest, SeedOptionMatchesSeedArgument) {
  Xoshiro256 rng(19);
  auto lists = GenerateIntersectingSets({500, 800}, 11, 1 << 18, rng);
  // Same seed => same permutation => identical *unordered* emission order.
  auto unordered_run = [&lists](std::unique_ptr<IntersectionAlgorithm> alg) {
    std::vector<std::unique_ptr<PreprocessedSet>> owned;
    std::vector<const PreprocessedSet*> views;
    for (const ElemList& l : lists) {
      owned.push_back(alg->Preprocess(l));
      views.push_back(owned.back().get());
    }
    ElemList out;
    alg->IntersectUnordered(views, &out);
    return out;
  };
  auto& registry = AlgorithmRegistry::Global();
  EXPECT_EQ(unordered_run(registry.Create("RanGroupScan", 777)),
            unordered_run(registry.Create("RanGroupScan:seed=777")));
}

TEST(RegistryOptionsTest, UnknownNameAndOptionsAreCheckedErrors) {
  auto& registry = AlgorithmRegistry::Global();
  EXPECT_THROW(registry.Create("NoSuchAlgorithm"), std::invalid_argument);
  EXPECT_THROW(registry.Create("RanGroupScan:nope=1"), std::invalid_argument);
  EXPECT_THROW(registry.Create("Merge:m=2"), std::invalid_argument);
  EXPECT_THROW(registry.Create("RanGroupScan:m=banana"),
               std::invalid_argument);
  EXPECT_THROW(registry.Create("RanGroupScan:m="), std::invalid_argument);
  EXPECT_THROW(registry.Create(""), std::invalid_argument);
  EXPECT_THROW(registry.Create(":m=2"), std::invalid_argument);
}

TEST(RegistryOptionsTest, BareKeyIsBooleanShorthand) {
  auto alg = AlgorithmRegistry::Global().Create("RanGroupScan:memoize");
  EXPECT_NE(alg, nullptr);
}

TEST(RegistryTest, NamesMatchLegacyLists) {
  auto& registry = AlgorithmRegistry::Global();
  EXPECT_EQ(registry.Names(false, false), UncompressedAlgorithmNames());
  EXPECT_EQ(registry.Names(true, false), CompressedAlgorithmNames());
  // Hidden aliases appear only on request.
  auto all = registry.Names(/*include_hidden=*/true);
  EXPECT_NE(std::find(all.begin(), all.end(), "RanGroupScan2"), all.end());
  auto visible = registry.Names(/*include_hidden=*/false);
  EXPECT_EQ(std::find(visible.begin(), visible.end(), "RanGroupScan2"),
            visible.end());
}

TEST(RegistryTest, DescriptorMetadata) {
  const AlgorithmDescriptor* d = AlgorithmRegistry::Global().Find("IntGroup");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->max_query_sets, 2u);
  EXPECT_FALSE(d->compressed);
  const AlgorithmDescriptor* c =
      AlgorithmRegistry::Global().Find("RanGroupScan_Delta");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->compressed);
  EXPECT_EQ(AlgorithmRegistry::Global().Find("NoSuchAlgorithm"), nullptr);
}

// Third-party self-registration: a descriptor registered from user code
// (here delegating to Merge) becomes creatable like any built-in.
TEST(RegistryTest, SelfRegistrationViaRegistrar) {
  static const AlgorithmRegistrar registrar({
      .name = "TestEchoMerge",
      .options_help = "",
      .make =
          [](AlgorithmOptions&) {
            return AlgorithmRegistry::Global().Create("Merge");
          },
  });
  auto alg = AlgorithmRegistry::Global().Create("TestEchoMerge");
  ASSERT_NE(alg, nullptr);
  EXPECT_EQ(alg->IntersectLists(
                std::vector<ElemList>{{1, 2, 3}, {2, 3, 4}}),
            (ElemList{2, 3}));
  // Duplicate registration is a checked error.
  EXPECT_THROW(AlgorithmRegistry::Global().Register(
                   {.name = "TestEchoMerge",
                    .make = [](AlgorithmOptions&) {
                      return AlgorithmRegistry::Global().Create("Merge");
                    }}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fsi
