#include "container/hash_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace fsi {
namespace {

TEST(HashSetTest, EmptySet) {
  HashSet<std::uint32_t> set;
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(42));
  EXPECT_EQ(set.size(), 0u);
}

TEST(HashSetTest, BasicMembership) {
  std::vector<std::uint32_t> keys = {1, 5, 9, 1000000, 0};
  HashSet<std::uint32_t> set(keys);
  EXPECT_EQ(set.size(), 5u);
  for (auto k : keys) EXPECT_TRUE(set.Contains(k));
  EXPECT_FALSE(set.Contains(2));
  EXPECT_FALSE(set.Contains(999999));
}

TEST(HashSetTest, DuplicatesCollapse) {
  std::vector<std::uint32_t> keys = {7, 7, 7, 8};
  HashSet<std::uint32_t> set(keys);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(7));
  EXPECT_TRUE(set.Contains(8));
}

TEST(HashSetTest, LargeRandomMembership) {
  Xoshiro256 rng(51);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 100000; ++i) {
    keys.push_back(static_cast<std::uint32_t>(rng.Next()));
  }
  HashSet<std::uint32_t> set(keys);
  for (auto k : keys) ASSERT_TRUE(set.Contains(k));
  // Random probes: false positives must not occur.
  int fp = 0;
  for (int i = 0; i < 100000; ++i) {
    auto probe = static_cast<std::uint32_t>(rng.Next());
    bool expected = std::find(keys.begin(), keys.end(), probe) != keys.end();
    if (!expected && set.Contains(probe)) ++fp;
    if (i > 200) break;  // the linear find above is O(n); sample a few
  }
  EXPECT_EQ(fp, 0);
}

TEST(HashSetTest, AdversarialClusteredKeys) {
  // Consecutive keys stress linear probing runs.
  std::vector<std::uint32_t> keys;
  for (std::uint32_t i = 1000; i < 3000; ++i) keys.push_back(i);
  HashSet<std::uint32_t> set(keys);
  for (std::uint32_t i = 1000; i < 3000; ++i) EXPECT_TRUE(set.Contains(i));
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_FALSE(set.Contains(i));
  for (std::uint32_t i = 3000; i < 4000; ++i) EXPECT_FALSE(set.Contains(i));
}

TEST(HashSetTest, SpaceAccountingHalfLoadFactor) {
  std::vector<std::uint32_t> keys(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) keys[i] = i * 7919;
  HashSet<std::uint32_t> set(keys);
  // Capacity is the smallest power of two >= 2n.
  EXPECT_EQ(set.SizeInWords(), 2048u);
}

TEST(HashSetTest, SixtyFourBitKeys) {
  std::vector<std::uint64_t> keys = {0, 1ULL << 40, 0xFFFFFFFFULL,
                                     0x123456789ABCDEFULL};
  HashSet<std::uint64_t> set(keys);
  for (auto k : keys) EXPECT_TRUE(set.Contains(k));
  EXPECT_FALSE(set.Contains(2));
}

}  // namespace
}  // namespace fsi
