// Build-health smoke test: every algorithm descriptor the registry holds
// must instantiate — via the registry and via the CreateAlgorithm shim —
// and round-trip a tiny, fully known intersection, through both the raw
// API and the Engine.  This is deliberately minimal — it is the first
// test to run after a fresh clone and catches registration or link
// regressions before the heavyweight property sweeps do.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "fsi.h"

namespace fsi {
namespace {

std::vector<std::string> AllRegisteredSpecs() {
  std::vector<std::string> specs;
  // Every descriptor, including hidden aliases such as "RanGroupScan2"...
  for (auto name : AlgorithmRegistry::Global().Names(/*include_hidden=*/true)) {
    specs.emplace_back(name);
  }
  // ...plus at least one option-string spelling per option style.
  specs.emplace_back("RanGroupScan:m=2,w=4");
  specs.emplace_back("Hybrid:skew_threshold=32");
  specs.emplace_back("IntGroup:s=16");
  return specs;
}

TEST(RegistrySmokeTest, EveryDescriptorInstantiatesAndRoundTrips) {
  const std::vector<ElemList> lists = {{1, 3, 5, 7, 9, 11, 100, 200},
                                       {2, 3, 4, 7, 8, 11, 200, 300}};
  const ElemList expected = {3, 7, 11, 200};

  for (const std::string& spec : AllRegisteredSpecs()) {
    SCOPED_TRACE(spec);
    // Raw API through the legacy shim.
    auto alg = CreateAlgorithm(spec);
    ASSERT_NE(alg, nullptr);
    EXPECT_FALSE(alg->name().empty());
    EXPECT_EQ(alg->IntersectLists(lists), expected);
    // Engine API over the same spec.
    Engine engine{spec};
    PreparedSet a = engine.Prepare(lists[0]);
    PreparedSet b = engine.Prepare(lists[1]);
    EXPECT_EQ(engine.Query({&a, &b}).Materialize(), expected);
  }
}

TEST(RegistrySmokeTest, EmptyIntersectionRoundTrips) {
  const std::vector<ElemList> lists = {{1, 4, 9}, {2, 5, 10}};

  for (const std::string& spec : AllRegisteredSpecs()) {
    SCOPED_TRACE(spec);
    Engine engine{spec};
    EXPECT_TRUE(engine.IntersectLists(lists).empty());
  }
}

}  // namespace
}  // namespace fsi
