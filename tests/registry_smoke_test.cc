// Build-health smoke test: every algorithm name the registry recognises
// must instantiate via CreateAlgorithm() and round-trip a tiny, fully
// known intersection.  This is deliberately minimal — it is the first
// test to run after a fresh clone and catches registration or link
// regressions before the heavyweight property sweeps do.

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "core/intersector.h"

namespace fsi {
namespace {

std::vector<std::string_view> AllRegisteredNames() {
  std::vector<std::string_view> names = UncompressedAlgorithmNames();
  for (auto name : CompressedAlgorithmNames()) names.push_back(name);
  // Aliases accepted by CreateAlgorithm() but absent from both lists.
  names.push_back("RanGroupScan2");
  return names;
}

TEST(RegistrySmokeTest, EveryNameInstantiatesAndRoundTrips) {
  const std::vector<ElemList> lists = {{1, 3, 5, 7, 9, 11, 100, 200},
                                       {2, 3, 4, 7, 8, 11, 200, 300}};
  const ElemList expected = {3, 7, 11, 200};

  for (auto name : AllRegisteredNames()) {
    SCOPED_TRACE(std::string(name));
    auto alg = CreateAlgorithm(name);
    ASSERT_NE(alg, nullptr);
    EXPECT_FALSE(alg->name().empty());
    EXPECT_EQ(alg->IntersectLists(lists), expected);
  }
}

TEST(RegistrySmokeTest, EmptyIntersectionRoundTrips) {
  const std::vector<ElemList> lists = {{1, 4, 9}, {2, 5, 10}};

  for (auto name : AllRegisteredNames()) {
    SCOPED_TRACE(std::string(name));
    auto alg = CreateAlgorithm(name);
    ASSERT_NE(alg, nullptr);
    EXPECT_TRUE(alg->IntersectLists(lists).empty());
  }
}

}  // namespace
}  // namespace fsi
