// Property tests: every intersection algorithm in the library must agree
// with std::set_intersection ground truth on randomized workloads sweeping
// sizes, skew ratios, number of sets and universe density, plus a battery
// of adversarial edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "api/engine.h"
#include "core/intersector.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  if (lists.empty()) return {};
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (auto n : UncompressedAlgorithmNames()) names.emplace_back(n);
  for (auto n : CompressedAlgorithmNames()) names.emplace_back(n);
  return names;
}

/// One workload shape: set sizes, controlled intersection size (or
/// kUniform), universe size.
struct WorkloadSpec {
  std::vector<std::size_t> sizes;
  long long r;  // -1: uncontrolled (independent uniform draws)
  std::uint64_t universe;
};

std::vector<WorkloadSpec> Specs() {
  return {
      // Balanced two-set, varying density.
      {{200, 200}, 20, 1 << 12},
      {{1000, 1000}, 10, 1 << 20},
      {{1000, 1000}, 700, 1 << 20},  // 70% intersection (Fig. 5 crossover)
      {{1000, 1000}, 1000, 1 << 20},  // full overlap
      {{4096, 4096}, 41, 1 << 16},    // dense universe
      // Skewed two-set (the HashBin / Hash regime).
      {{32, 4096}, 5, 1 << 20},
      {{10, 100000}, 3, 1 << 24},
      {{1000, 32000}, 10, 1 << 22},
      // k = 3, 4, 5.
      {{300, 400, 500}, 25, 1 << 18},
      {{100, 1000, 10000}, 7, 1 << 22},
      {{200, 200, 200, 200}, 13, 1 << 18},
      {{50, 500, 5000, 50000}, 4, 1 << 24},
      {{100, 100, 100, 100, 100}, 9, 1 << 16},
      // Uncontrolled uniform (Fig. 6 style, accidental overlaps).
      {{2000, 2000}, -1, 1 << 14},
      {{1000, 1000, 1000}, -1, 1 << 13},
      {{500, 600, 700, 800}, -1, 1 << 12},
  };
}

class AlgorithmPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(AlgorithmPropertyTest, MatchesGroundTruth) {
  const std::string& name = std::get<0>(GetParam());
  const WorkloadSpec spec = Specs()[std::get<1>(GetParam())];
  auto alg = CreateAlgorithm(name);
  if (spec.sizes.size() > alg->max_query_sets()) {
    GTEST_SKIP() << name << " supports at most " << alg->max_query_sets()
                 << " sets";
  }
  // Three seeds per (algorithm, spec) cell.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + std::get<1>(GetParam()));
    std::vector<ElemList> lists;
    if (spec.r >= 0) {
      lists = GenerateIntersectingSets(
          spec.sizes, static_cast<std::size_t>(spec.r), spec.universe, rng);
    } else {
      for (std::size_t n : spec.sizes) {
        lists.push_back(SampleSortedSet(n, spec.universe, rng));
      }
    }
    ElemList expected = GroundTruth(lists);
    ElemList actual = alg->IntersectLists(lists);
    ASSERT_EQ(actual, expected)
        << name << " seed=" << seed << " spec=" << std::get<1>(GetParam());
    // The Engine API over the same workload: Unordered() must return the
    // same *set*, and the count-only sink the same cardinality.
    Engine engine(name, {.validation = ValidationPolicy::kFull});
    std::vector<PreparedSet> prepared;
    for (const ElemList& l : lists) prepared.push_back(engine.Prepare(l));
    ElemList unordered = engine.Query(prepared).Unordered().Materialize();
    std::sort(unordered.begin(), unordered.end());
    ASSERT_EQ(unordered, expected) << name << " (unordered)";
    ASSERT_EQ(engine.Query(prepared).Count(), expected.size())
        << name << " (count-only)";
    if (spec.r >= 0) {
      // The generator guarantees the exact intersection size.
      ASSERT_EQ(expected.size(), static_cast<std::size_t>(spec.r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllWorkloads, AlgorithmPropertyTest,
    ::testing::Combine(::testing::ValuesIn(AllNames()),
                       ::testing::Range<std::size_t>(0, Specs().size())),
    [](const ::testing::TestParamInfo<AlgorithmPropertyTest::ParamType>& info) {
      return std::get<0>(info.param) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Edge cases, one parameterized suite over algorithm names.
// ---------------------------------------------------------------------------

class AlgorithmEdgeCaseTest : public ::testing::TestWithParam<std::string> {
 protected:
  ElemList Run(const std::vector<ElemList>& lists) {
    auto alg = CreateAlgorithm(GetParam());
    return alg->IntersectLists(lists);
  }
};

TEST_P(AlgorithmEdgeCaseTest, BothEmpty) {
  EXPECT_TRUE(Run({{}, {}}).empty());
}

TEST_P(AlgorithmEdgeCaseTest, OneEmpty) {
  EXPECT_TRUE(Run({{}, {1, 2, 3}}).empty());
  EXPECT_TRUE(Run({{1, 2, 3}, {}}).empty());
}

TEST_P(AlgorithmEdgeCaseTest, Singletons) {
  EXPECT_EQ(Run({{5}, {5}}), (ElemList{5}));
  EXPECT_TRUE(Run({{5}, {6}}).empty());
}

TEST_P(AlgorithmEdgeCaseTest, IdenticalSets) {
  ElemList a = {0, 1, 2, 3, 100, 1000, 65536, 1000000};
  EXPECT_EQ(Run({a, a}), a);
}

TEST_P(AlgorithmEdgeCaseTest, DisjointInterleaved) {
  ElemList a, b;
  for (Elem i = 0; i < 200; ++i) {
    a.push_back(2 * i);
    b.push_back(2 * i + 1);
  }
  EXPECT_TRUE(Run({a, b}).empty());
}

TEST_P(AlgorithmEdgeCaseTest, SubsetRelation) {
  ElemList small = {10, 20, 30};
  ElemList big;
  for (Elem i = 0; i < 100; ++i) big.push_back(i);
  EXPECT_EQ(Run({small, big}), small);
}

TEST_P(AlgorithmEdgeCaseTest, UniverseBoundaryValues) {
  ElemList a = {0, 1, 0x7FFFFFFFu, 0xFFFFFFFEu, 0xFFFFFFFFu};
  ElemList b = {0, 2, 0x7FFFFFFFu, 0xFFFFFFFFu};
  EXPECT_EQ(Run({a, b}), (ElemList{0, 0x7FFFFFFFu, 0xFFFFFFFFu}));
}

TEST_P(AlgorithmEdgeCaseTest, ConsecutiveRun) {
  ElemList a, b;
  for (Elem i = 5000; i < 6000; ++i) a.push_back(i);
  for (Elem i = 5500; i < 6500; ++i) b.push_back(i);
  ElemList expected;
  for (Elem i = 5500; i < 6000; ++i) expected.push_back(i);
  EXPECT_EQ(Run({a, b}), expected);
}

TEST_P(AlgorithmEdgeCaseTest, ThreeSetsWhenSupported) {
  auto alg = CreateAlgorithm(GetParam());
  if (alg->max_query_sets() < 3) GTEST_SKIP();
  ElemList a = {1, 2, 3, 4, 5, 6, 7, 8};
  ElemList b = {2, 4, 6, 8, 10};
  ElemList c = {4, 8, 12};
  EXPECT_EQ(alg->IntersectLists(std::vector<ElemList>{a, b, c}),
            (ElemList{4, 8}));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmEdgeCaseTest,
                         ::testing::ValuesIn(AllNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace fsi
