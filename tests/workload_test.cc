// Tests for the workload generators: the synthetic generators' exactness
// guarantees and the simulated-corpus statistics (DESIGN.md §3).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "workload/corpus.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

TEST(SampleSortedSetTest, SizeSortedUniqueInRange) {
  Xoshiro256 rng(51);
  for (std::size_t n : {0u, 1u, 10u, 1000u, 50000u}) {
    ElemList set = SampleSortedSet(n, 1 << 20, rng);
    ASSERT_EQ(set.size(), n);
    for (std::size_t i = 1; i < set.size(); ++i) {
      ASSERT_LT(set[i - 1], set[i]);
    }
    if (n > 0) {
      ASSERT_LT(set.back(), 1u << 20);
    }
  }
}

TEST(SampleSortedSetTest, DensePathExact) {
  Xoshiro256 rng(52);
  // n = universe: must return the full universe.
  ElemList set = SampleSortedSet(1024, 1024, rng);
  ASSERT_EQ(set.size(), 1024u);
  for (Elem i = 0; i < 1024; ++i) EXPECT_EQ(set[i], i);
}

TEST(SampleSortedSetTest, RejectsOversizedRequest) {
  Xoshiro256 rng(53);
  EXPECT_THROW(SampleSortedSet(100, 50, rng), std::invalid_argument);
}

TEST(GenerateIntersectingSetsTest, ExactIntersectionSize) {
  Xoshiro256 rng(54);
  for (std::size_t r : {0u, 1u, 17u, 100u}) {
    auto lists = GenerateIntersectingSets({100, 300, 500}, r, 1 << 20, rng);
    ASSERT_EQ(lists.size(), 3u);
    EXPECT_EQ(lists[0].size(), 100u);
    EXPECT_EQ(lists[1].size(), 300u);
    EXPECT_EQ(lists[2].size(), 500u);
    ElemList acc = lists[0];
    for (std::size_t i = 1; i < lists.size(); ++i) {
      ElemList next;
      std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                            lists[i].end(), std::back_inserter(next));
      acc.swap(next);
    }
    EXPECT_EQ(acc.size(), r);
  }
}

TEST(GenerateIntersectingSetsTest, PairwiseDisjointBeyondCore) {
  Xoshiro256 rng(55);
  auto lists = GenerateIntersectingSets({200, 200}, 50, 1 << 20, rng);
  ElemList inter;
  std::set_intersection(lists[0].begin(), lists[0].end(), lists[1].begin(),
                        lists[1].end(), std::back_inserter(inter));
  EXPECT_EQ(inter.size(), 50u);
}

TEST(GenerateIntersectingSetsTest, Validation) {
  Xoshiro256 rng(56);
  EXPECT_THROW(GenerateIntersectingSets({10, 20}, 15, 1 << 20, rng),
               std::invalid_argument);  // r > n1
  EXPECT_THROW(GenerateIntersectingSets({100, 100}, 0, 150, rng),
               std::invalid_argument);  // universe too small
}

TEST(GenerateUniformSetsTest, IndependentDraws) {
  Xoshiro256 rng(57);
  auto lists = GenerateUniformSets(3, 1000, 1 << 16, rng);
  ASSERT_EQ(lists.size(), 3u);
  for (const auto& l : lists) EXPECT_EQ(l.size(), 1000u);
  EXPECT_NE(lists[0], lists[1]);
}

TEST(ZipfDistributionTest, SkewTowardLowRanks) {
  ZipfDistribution zipf(1000, 1.0);
  Xoshiro256 rng(58);
  std::size_t low = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // Under Zipf(1.0) over 1000 ranks, the top-10 mass is ~39%.
  double frac = static_cast<double>(low) / kSamples;
  EXPECT_GT(frac, 0.30);
  EXPECT_LT(frac, 0.50);
}

TEST(SyntheticCorpusTest, PostingListsAreValid) {
  SyntheticCorpus::Options o;
  o.num_docs = 1 << 14;
  o.vocabulary = 200;
  SyntheticCorpus corpus(o);
  ASSERT_EQ(corpus.num_terms(), 200u);
  std::size_t prev_df = SIZE_MAX;
  for (std::size_t t = 0; t < corpus.num_terms(); ++t) {
    const ElemList& p = corpus.postings(t);
    ASSERT_GE(p.size(), o.min_df);
    for (std::size_t i = 1; i < p.size(); ++i) ASSERT_LT(p[i - 1], p[i]);
    ASSERT_LT(p.back(), o.num_docs);
    // Document frequency decreases (weakly) with rank.
    ASSERT_LE(p.size(), prev_df);
    prev_df = p.size();
  }
}

TEST(QueryWorkloadTest, KeywordDistributionMatchesTargets) {
  SyntheticCorpus::Options co;
  co.num_docs = 1 << 14;
  co.vocabulary = 500;
  SyntheticCorpus corpus(co);
  QueryWorkload::Options qo;
  qo.num_queries = 4000;
  QueryWorkload workload(corpus, qo);
  auto stats = workload.ComputeStats(corpus);
  EXPECT_NEAR(stats.frac2, 0.68, 0.04);
  EXPECT_NEAR(stats.frac3, 0.23, 0.04);
  EXPECT_NEAR(stats.frac4, 0.06, 0.02);
  // Queries produce non-trivial skew and selectivity.
  EXPECT_GT(stats.mean_ratio_12, 0.0);
  EXPECT_LT(stats.mean_ratio_12, 1.0);
  EXPECT_GT(stats.mean_selectivity, 0.0);
}

TEST(QueryWorkloadTest, QueriesHaveDistinctTerms) {
  SyntheticCorpus::Options co;
  co.num_docs = 1 << 12;
  co.vocabulary = 100;
  SyntheticCorpus corpus(co);
  QueryWorkload::Options qo;
  qo.num_queries = 500;
  QueryWorkload workload(corpus, qo);
  for (const TermQuery& q : workload.queries()) {
    ASSERT_GE(q.size(), 2u);
    ASSERT_LE(q.size(), 5u);
    for (std::size_t i = 0; i < q.size(); ++i) {
      ASSERT_LT(q[i], corpus.num_terms());
      for (std::size_t j = i + 1; j < q.size(); ++j) {
        ASSERT_NE(q[i], q[j]);
      }
    }
  }
}

}  // namespace
}  // namespace fsi
