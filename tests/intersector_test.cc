// Tests for the registry and the Hybrid facade (online algorithm choice,
// end of Section 3.4).

#include "core/intersector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

TEST(RegistryTest, CreatesEveryListedAlgorithm) {
  for (auto name : UncompressedAlgorithmNames()) {
    auto alg = CreateAlgorithm(name);
    ASSERT_NE(alg, nullptr);
    EXPECT_EQ(alg->name(), name);
  }
  for (auto name : CompressedAlgorithmNames()) {
    auto alg = CreateAlgorithm(name);
    ASSERT_NE(alg, nullptr);
    EXPECT_EQ(alg->name(), name);
  }
}

TEST(RegistryTest, RanGroupScan2HasTwoImages) {
  auto alg = CreateAlgorithm("RanGroupScan2");
  EXPECT_EQ(alg->name(), "RanGroupScan");
  auto* scan = dynamic_cast<RanGroupScanIntersection*>(alg.get());
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->m(), 2);
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(CreateAlgorithm("NoSuchAlgorithm"), std::invalid_argument);
}

TEST(HybridTest, BalancedQueryUsesScanPathCorrectly) {
  Xoshiro256 rng(41);
  auto lists = GenerateIntersectingSets({4000, 5000}, 33, 1 << 22, rng);
  HybridIntersection alg;
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists));
}

TEST(HybridTest, SkewedQueryUsesHashBinPathCorrectly) {
  Xoshiro256 rng(42);
  auto lists = GenerateIntersectingSets({100, 50000}, 13, 1 << 24, rng);
  HybridIntersection alg;  // ratio 500 >> threshold 32
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists));
}

TEST(HybridTest, ThresholdBoundary) {
  // Just below and just above the default threshold; both must be correct.
  Xoshiro256 rng(43);
  auto below = GenerateIntersectingSets({1000, 31000}, 11, 1 << 22, rng);
  auto above = GenerateIntersectingSets({1000, 33000}, 11, 1 << 22, rng);
  HybridIntersection alg;
  EXPECT_EQ(alg.IntersectLists(below), GroundTruth(below));
  EXPECT_EQ(alg.IntersectLists(above), GroundTruth(above));
}

TEST(HybridTest, CustomThreshold) {
  HybridIntersection::Options o;
  o.skew_threshold = 2.0;
  HybridIntersection alg(o);
  Xoshiro256 rng(44);
  auto lists = GenerateIntersectingSets({1000, 3000}, 21, 1 << 20, rng);
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists));
}

TEST(HybridTest, MultiSetSkewed) {
  Xoshiro256 rng(45);
  auto lists = GenerateIntersectingSets({50, 20000, 40000}, 6, 1 << 24, rng);
  HybridIntersection alg;
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists));
}

TEST(RegistryTest, SeedPropagates) {
  // Different seeds must still give identical (correct) results.
  Xoshiro256 rng(46);
  auto lists = GenerateIntersectingSets({500, 700}, 9, 1 << 20, rng);
  for (auto name : {"RanGroupScan", "RanGroup", "HashBin", "IntGroup"}) {
    auto a1 = CreateAlgorithm(name, 111);
    auto a2 = CreateAlgorithm(name, 222);
    EXPECT_EQ(a1->IntersectLists(lists), a2->IntersectLists(lists)) << name;
  }
}

}  // namespace
}  // namespace fsi
