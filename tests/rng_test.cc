#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fsi {
namespace {

TEST(RngTest, SplitMix64Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SplitMix64SeedSensitivity) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, XoshiroDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, XoshiroBelowInRange) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, XoshiroBelowCoversSmallRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, Mix64IsAPermutationLocally) {
  // Distinct inputs map to distinct outputs (spot check — Mix64 is bijective
  // on 64 bits by construction).
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 4096; ++x) outs.insert(Mix64(x));
  EXPECT_EQ(outs.size(), 4096u);
}

}  // namespace
}  // namespace fsi
