// Tests for the concurrent batch layer (api/thread_pool.h,
// api/batch_runner.h) and the InvertedIndex batch entry points:
// determinism against single-threaded execution for every registered
// algorithm, stats merging, graceful pool shutdown under pending work,
// and the oversubscription matrix (threads > queries and queries >
// threads).  This binary is the core of the TSan CI job — most tests
// deliberately share one Engine and its PreparedSets across workers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fsi.h"
#include "index/inverted_index.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, DrainsPendingWorkOnShutdown) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1);
    });
  }
  // Most of the 64 tasks are still queued here; graceful shutdown must
  // run them all before joining.
  pool.Shutdown();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  EXPECT_NO_THROW(pool.Shutdown());
}

TEST(ThreadPoolTest, DefaultConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
  ThreadPool pool;  // num_threads = 0 resolves to the default
  EXPECT_GE(pool.num_threads(), 1u);
}

// ---------------------------------------------------------------------------
// Batch workload fixture: a pool of prepared sets with guaranteed overlap
// and a query list mixing arities, built once per engine spec.
// ---------------------------------------------------------------------------

struct Workload {
  Engine engine;
  std::vector<PreparedSet> sets;
  std::vector<BatchQuery> queries;
};

Workload MakeWorkload(const std::string& spec, std::size_t num_queries = 16) {
  Engine engine(spec);
  Xoshiro256 rng(0xBA7C4 + num_queries);
  // Six lists sharing a 32-element core, so every query has a non-trivial
  // intersection.
  std::vector<ElemList> lists = GenerateIntersectingSets(
      {300, 250, 200, 180, 160, 140}, 32, 1 << 16, rng);
  Workload w{std::move(engine), {}, {}};
  w.sets.reserve(lists.size());
  for (const ElemList& l : lists) w.sets.push_back(w.engine.Prepare(l));
  const std::size_t max_k =
      std::min<std::size_t>(3, w.engine.max_query_sets());
  for (std::size_t i = 0; i < num_queries; ++i) {
    const std::size_t k = 2 + (max_k > 2 ? i % (max_k - 1) : 0);
    BatchQuery q;
    for (std::size_t j = 0; j < k; ++j) {
      q.push_back(&w.sets[(i + j * 2 + 1) % w.sets.size()]);
    }
    w.queries.push_back(std::move(q));
  }
  return w;
}

std::vector<ElemList> SerialGroundTruth(Workload& w) {
  std::vector<ElemList> expected;
  expected.reserve(w.queries.size());
  for (const BatchQuery& q : w.queries) {
    expected.push_back(w.engine.Query(q).Materialize());
  }
  return expected;
}

// ---------------------------------------------------------------------------
// Determinism: concurrent execution is bitwise identical to serial, for
// every registered algorithm (randomized ones included — the hash
// functions live in the shared structures, not in per-thread state).
// ---------------------------------------------------------------------------

TEST(BatchRunnerTest, MatchesSingleThreadedForEveryRegisteredAlgorithm) {
  for (std::string_view name : AlgorithmRegistry::Global().Names()) {
    SCOPED_TRACE(std::string(name));
    Workload w = MakeWorkload(std::string(name));
    std::vector<ElemList> expected = SerialGroundTruth(w);
    BatchRunner runner(w.engine, {.num_threads = 4});
    std::vector<ElemList> actual = runner.Materialize(w.queries);
    EXPECT_EQ(actual, expected);
  }
}

TEST(BatchRunnerTest, OversubscriptionMatrix) {
  // threads > queries, queries > threads, and the empty batch: results
  // must not depend on the shape of the schedule.
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (std::size_t num_queries : {0u, 1u, 3u, 16u, 64u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " queries=" + std::to_string(num_queries));
      Workload w = MakeWorkload("RanGroupScan", num_queries);
      std::vector<ElemList> expected = SerialGroundTruth(w);
      BatchRunner runner(w.engine, {.num_threads = threads});
      EXPECT_EQ(runner.Materialize(w.queries), expected);
      EXPECT_EQ(runner.stats().num_queries, num_queries);
      EXPECT_EQ(runner.num_threads(), threads);
    }
  }
}

// ---------------------------------------------------------------------------
// Stats merging.
// ---------------------------------------------------------------------------

TEST(BatchRunnerTest, StatsMergeCorrectness) {
  Workload w = MakeWorkload("Hybrid", 32);
  // Expected volume/result totals from the serial baseline.
  std::size_t expected_results = 0;
  std::size_t expected_scanned = 0;
  for (const BatchQuery& q : w.queries) {
    fsi::Query query = w.engine.Query(q);
    expected_results += query.Count();
    expected_scanned += query.stats().elements_scanned;
  }
  ASSERT_GT(expected_results, 0u);

  BatchRunner runner(w.engine, {.num_threads = 4});
  runner.Materialize(w.queries);
  const BatchStats& stats = runner.stats();
  EXPECT_EQ(stats.num_queries, 32u);
  EXPECT_EQ(stats.num_threads, 4u);
  EXPECT_EQ(stats.total_results, expected_results);
  EXPECT_EQ(stats.elements_scanned, expected_scanned);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_LE(stats.p50_micros, stats.p95_micros);
  EXPECT_LE(stats.p95_micros, stats.p99_micros);
  EXPECT_LE(stats.p99_micros, stats.max_micros);
  EXPECT_GT(stats.max_micros, 0.0);
  // BatchRunner applies no deadlines or admission: the serving-layer
  // counters stay zero here (see ShardedEngine::ServeBatch).
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(BatchRunnerTest, StatsRefreshAcrossBatches) {
  Workload w = MakeWorkload("Merge", 16);
  BatchRunner runner(w.engine, {.num_threads = 2});
  runner.Materialize(w.queries);
  EXPECT_EQ(runner.stats().num_queries, 16u);
  std::vector<BatchQuery> half(w.queries.begin(), w.queries.begin() + 4);
  runner.Count(half);
  EXPECT_EQ(runner.stats().num_queries, 4u);
}

// ---------------------------------------------------------------------------
// Sink agreement.
// ---------------------------------------------------------------------------

TEST(BatchRunnerTest, CountAgreesWithMaterialize) {
  Workload w = MakeWorkload("RanGroup", 24);
  BatchRunner runner(w.engine, {.num_threads = 4});
  std::vector<ElemList> results = runner.Materialize(w.queries);
  std::vector<std::size_t> counts = runner.Count(w.queries);
  ASSERT_EQ(counts.size(), results.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], results[i].size()) << "query " << i;
  }
}

TEST(BatchRunnerTest, VisitAgreesWithMaterialize) {
  Workload w = MakeWorkload("IntGroup", 24);  // arity-2-limited algorithm
  BatchRunner runner(w.engine, {.num_threads = 4});
  std::vector<ElemList> expected = runner.Materialize(w.queries);

  std::mutex mutex;
  std::vector<ElemList> visited(w.queries.size());
  std::size_t total = runner.Visit(
      w.queries, [&](std::size_t i, std::span<const Elem> elems) {
        std::lock_guard<std::mutex> lock(mutex);
        visited[i].assign(elems.begin(), elems.end());
      });
  EXPECT_EQ(visited, expected);
  EXPECT_EQ(total, runner.stats().total_results);
}

TEST(BatchRunnerTest, LimitAndUnorderedOptions) {
  Workload w = MakeWorkload("RanGroupScan", 12);
  std::vector<ElemList> full = SerialGroundTruth(w);

  BatchRunner limited(w.engine, {.num_threads = 4, .limit = 5});
  std::vector<ElemList> capped = limited.Materialize(w.queries);
  for (std::size_t i = 0; i < capped.size(); ++i) {
    EXPECT_LE(capped[i].size(), 5u);
    // Ordered limit keeps the first elements in document-id order.
    EXPECT_TRUE(std::equal(capped[i].begin(), capped[i].end(),
                           full[i].begin()))
        << "query " << i;
  }

  BatchRunner unordered(w.engine, {.num_threads = 4, .ordered = false});
  std::vector<ElemList> anyorder = unordered.Materialize(w.queries);
  for (std::size_t i = 0; i < anyorder.size(); ++i) {
    std::sort(anyorder[i].begin(), anyorder[i].end());
    EXPECT_EQ(anyorder[i], full[i]) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Error handling.
// ---------------------------------------------------------------------------

TEST(BatchRunnerTest, ValidationThrowsBeforeExecution) {
  Workload w = MakeWorkload("Merge", 4);
  BatchRunner runner(w.engine, {.num_threads = 2});

  PreparedSet empty;
  std::vector<BatchQuery> bad = w.queries;
  bad.push_back({&w.sets[0], &empty});
  EXPECT_THROW(runner.Materialize(bad), std::invalid_argument);

  Engine other("Merge");
  PreparedSet foreign = other.Prepare(ElemList{1, 2, 3});
  bad.back() = {&w.sets[0], &foreign};
  EXPECT_THROW(runner.Materialize(bad), std::invalid_argument);

  // The runner (and its pool) survive a rejected batch.
  EXPECT_EQ(runner.Materialize(w.queries), SerialGroundTruth(w));
}

TEST(BatchRunnerTest, VisitorExceptionPropagates) {
  Workload w = MakeWorkload("Merge", 8);
  BatchRunner runner(w.engine, {.num_threads = 2});
  EXPECT_THROW(
      runner.Visit(w.queries,
                   [](std::size_t i, std::span<const Elem>) {
                     if (i == 5) throw std::runtime_error("visitor failed");
                   }),
      std::runtime_error);
  // Still usable afterwards.
  EXPECT_EQ(runner.Count(w.queries).size(), w.queries.size());
}

// ---------------------------------------------------------------------------
// Shared-structure stress: many runners over one Engine's PreparedSets,
// driven from separate threads — the TSan target for the "threads may
// share prepared sets" contract.
// ---------------------------------------------------------------------------

TEST(BatchRunnerTest, ConcurrentRunnersShareOneEngine) {
  Workload w = MakeWorkload("Hybrid", 32);
  std::vector<ElemList> expected = SerialGroundTruth(w);
  std::vector<std::thread> drivers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 3; ++t) {
    drivers.emplace_back([&w, &expected, &failures] {
      BatchRunner runner(w.engine, {.num_threads = 2});
      for (int round = 0; round < 4; ++round) {
        if (runner.Materialize(w.queries) != expected) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& d : drivers) d.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// InvertedIndex batch entry points.
// ---------------------------------------------------------------------------

TEST(InvertedIndexBatchTest, BatchMatchesSerialQueries) {
  InvertedIndex index{Engine("Hybrid")};
  // 200 documents over 8 terms with deterministic term membership.
  for (Elem d = 1; d <= 200; ++d) {
    std::vector<std::string> terms;
    for (int t = 0; t < 8; ++t) {
      if (d % (t + 2) == 0) terms.push_back("t" + std::to_string(t));
    }
    if (!terms.empty()) index.AddDocument(d, terms);
  }
  index.Finalize();

  std::vector<std::vector<std::string>> log = {
      {"t0", "t1"},       {"t2", "t3", "t4"}, {"t0", "t6"},
      {"t5"},             {"t1", "t7"},       {"t0", "nosuchterm"},
      {},                 {"t3", "t1", "t0"},
  };
  std::vector<ElemList> expected;
  for (const auto& q : log) expected.push_back(index.Query(q));

  BatchStats stats;
  std::vector<ElemList> actual =
      index.BatchMatch(log, {.num_threads = 4}, &stats);
  EXPECT_EQ(actual, expected);
  // Unknown-term and empty queries are answered without executing.
  EXPECT_EQ(stats.num_queries, 6u);

  std::vector<std::size_t> counts = index.BatchCount(log, {.num_threads = 2});
  ASSERT_EQ(counts.size(), log.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], expected[i].size()) << "query " << i;
  }
}

}  // namespace
}  // namespace fsi
