// Equivalence tests for the SIMD kernel layer (src/simd/).
//
// Two layers of guarantees:
//  * Kernel level: every vector tier the machine can execute produces
//    bit-identical results to the scalar tier, on adversarial inputs —
//    empty/singleton sets, dense overlap, disjoint interleavings,
//    unaligned lengths around the 4/8/16 lane widths, and values at the
//    uint32 extremes (0 and near-max, which exercise the sign-bias trick
//    and the masked-lane zero-fill).
//  * Algorithm level: for every registered algorithm, the default spec
//    (CPU-dispatched kernels) and the ":simd=off" spec (scalar kernels)
//    produce identical results through every Engine sink, with identical
//    QueryStats scan counts.

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fsi.h"
#include "simd/intersect_kernels.h"

namespace fsi {
namespace {

using U32List = std::vector<std::uint32_t>;

std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  const simd::Level best = simd::DetectCpuLevel();
  if (best >= simd::Level::kSse) levels.push_back(simd::Level::kSse);
  if (best >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  return levels;
}

U32List SortedUnique(U32List values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

U32List RandomSortedSet(std::mt19937_64& rng, std::size_t n,
                        std::uint32_t universe) {
  std::set<std::uint32_t> s;
  std::uniform_int_distribution<std::uint32_t> dist(0, universe);
  while (s.size() < n) s.insert(dist(rng));
  return U32List(s.begin(), s.end());
}

/// The adversarial pair catalogue shared by every kernel test.
std::vector<std::pair<U32List, U32List>> AdversarialPairs() {
  std::vector<std::pair<U32List, U32List>> pairs;
  // Empty and singleton shapes.
  pairs.push_back({{}, {}});
  pairs.push_back({{}, {1, 2, 3}});
  pairs.push_back({{5}, {}});
  pairs.push_back({{5}, {5}});
  pairs.push_back({{5}, {6}});
  // Identical lists (dense overlap) and fully disjoint interleavings.
  U32List dense;
  for (std::uint32_t i = 0; i < 100; ++i) dense.push_back(3 * i);
  pairs.push_back({dense, dense});
  U32List evens;
  U32List odds;
  for (std::uint32_t i = 0; i < 64; ++i) {
    evens.push_back(2 * i);
    odds.push_back(2 * i + 1);
  }
  pairs.push_back({evens, odds});
  // Unaligned lengths bracketing the 4/8/16 lane widths, partial overlap.
  for (std::size_t na : {1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u}) {
    for (std::size_t nb : {1u, 4u, 7u, 8u, 9u, 16u, 17u, 33u}) {
      U32List a;
      U32List b;
      for (std::size_t i = 0; i < na; ++i) {
        a.push_back(static_cast<std::uint32_t>(2 * i));
      }
      for (std::size_t i = 0; i < nb; ++i) {
        b.push_back(static_cast<std::uint32_t>(3 * i));
      }
      pairs.push_back({std::move(a), std::move(b)});
    }
  }
  // Values at the uint32 extremes: 0 (matches the maskload zero-fill) and
  // near UINT32_MAX (exercises the signed-compare bias).
  U32List low = {0, 1, 2, 7, 8};
  U32List high;
  for (std::uint32_t i = 0; i < 20; ++i) high.push_back(0xFFFFFFFFu - 2 * i);
  std::sort(high.begin(), high.end());
  pairs.push_back({low, low});
  pairs.push_back({high, high});
  pairs.push_back({low, high});
  U32List mixed = SortedUnique({0, 5, 8, 0x7FFFFFFFu, 0x80000000u,
                                0x80000001u, 0xFFFFFFFEu, 0xFFFFFFFFu});
  pairs.push_back({mixed, mixed});
  pairs.push_back({mixed, low});
  // Random fuzz: varying densities and sizes straddling the block widths.
  std::mt19937_64 rng(0x51D0CAFE);
  for (int round = 0; round < 40; ++round) {
    std::size_t na = rng() % 200;
    std::size_t nb = rng() % 200;
    std::uint32_t universe = (round % 2 == 0) ? 255 : (1u << 16);
    pairs.push_back({RandomSortedSet(rng, na, universe),
                     RandomSortedSet(rng, nb, universe)});
  }
  return pairs;
}

TEST(SimdCpuFeaturesTest, LevelNamesAndOrdering) {
  EXPECT_EQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_EQ(simd::LevelName(simd::Level::kSse), "sse");
  EXPECT_EQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  // The active level never exceeds what the CPU supports.
  EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
            static_cast<int>(simd::DetectCpuLevel()));
}

TEST(SimdCpuFeaturesTest, KernelsForLevelClampsToCpu) {
  const simd::Kernels& table = simd::KernelsForLevel(simd::Level::kAvx2);
  EXPECT_LE(static_cast<int>(table.level),
            static_cast<int>(simd::DetectCpuLevel()));
  EXPECT_EQ(simd::KernelsForLevel(simd::Level::kScalar).level,
            simd::Level::kScalar);
}

TEST(SimdModeTest, ParseModeAcceptsAndRejects) {
  EXPECT_EQ(simd::ParseMode("auto"), simd::Mode::kAuto);
  EXPECT_EQ(simd::ParseMode("on"), simd::Mode::kAuto);
  EXPECT_EQ(simd::ParseMode("off"), simd::Mode::kOff);
  EXPECT_EQ(simd::ParseMode("scalar"), simd::Mode::kOff);
  EXPECT_THROW(simd::ParseMode("fast"), std::invalid_argument);
  EXPECT_THROW(simd::ParseMode(""), std::invalid_argument);
}

TEST(SimdModeTest, RegistryRejectsBadSimdValue) {
  EXPECT_THROW(AlgorithmRegistry::Global().Create("Merge:simd=banana"),
               std::invalid_argument);
  // And accepts both documented values on every wired algorithm.
  for (const char* spec :
       {"Merge:simd=off", "SvS:simd=off", "BaezaYates:simd=off",
        "IntGroup:simd=off", "RanGroupScan:simd=off", "Hybrid:simd=off",
        "Merge:simd=auto", "RanGroupScan:simd=auto"}) {
    EXPECT_NO_THROW(AlgorithmRegistry::Global().Create(spec)) << spec;
  }
}

TEST(SimdKernelTest, IntersectPairMatchesScalarOnEveryTier) {
  const simd::Kernels& scalar = simd::ScalarKernels();
  for (simd::Level level : AvailableLevels()) {
    const simd::Kernels& table = simd::KernelsForLevel(level);
    for (const auto& [a, b] : AdversarialPairs()) {
      U32List expect;
      scalar.intersect_pair(a.data(), a.size(), b.data(), b.size(), &expect);
      U32List got;
      table.intersect_pair(a.data(), a.size(), b.data(), b.size(), &got);
      EXPECT_EQ(got, expect)
          << simd::LevelName(level) << " |a|=" << a.size()
          << " |b|=" << b.size();
      // Appending must preserve prior content (the RanGroupScan group loop
      // accumulates into one vector).
      U32List appended = {42};
      table.intersect_pair(a.data(), a.size(), b.data(), b.size(), &appended);
      ASSERT_GE(appended.size(), 1u);
      EXPECT_EQ(appended.front(), 42u);
      EXPECT_EQ(U32List(appended.begin() + 1, appended.end()), expect);
    }
  }
}

TEST(SimdKernelTest, LowerBoundMatchesScalarOnEveryTier) {
  std::mt19937_64 rng(0xB01DFACE);
  for (simd::Level level : AvailableLevels()) {
    const simd::Kernels& table = simd::KernelsForLevel(level);
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u,
                          31u, 32u, 33u, 63u, 64u, 65u, 200u}) {
      U32List sorted = RandomSortedSet(rng, n, 500);
      // Probe below, above, at, and between every element.
      U32List probes = {0, 0xFFFFFFFFu, 0x80000000u};
      for (std::uint32_t v : sorted) {
        probes.push_back(v);
        if (v > 0) probes.push_back(v - 1);
        if (v < 0xFFFFFFFFu) probes.push_back(v + 1);
      }
      for (std::uint32_t x : probes) {
        EXPECT_EQ(table.lower_bound(sorted.data(), sorted.size(), x),
                  simd::ScalarKernels().lower_bound(sorted.data(),
                                                    sorted.size(), x))
            << simd::LevelName(level) << " n=" << n << " x=" << x;
      }
    }
  }
}

TEST(SimdKernelTest, GallopMatchesScalarOnEveryTier) {
  std::mt19937_64 rng(0x6A110);
  U32List sorted = RandomSortedSet(rng, 300, 3000);
  for (simd::Level level : AvailableLevels()) {
    const simd::Kernels& table = simd::KernelsForLevel(level);
    for (std::size_t lo : {0u, 1u, 7u, 64u, 299u, 300u, 301u}) {
      for (std::uint32_t x : {0u, 1u, 500u, 1500u, 2999u, 3000u, 0xFFFFFFFFu}) {
        EXPECT_EQ(table.gallop_ge(sorted.data(), sorted.size(), lo, x),
                  simd::ScalarKernels().gallop_ge(sorted.data(), sorted.size(),
                                                  lo, x))
            << simd::LevelName(level) << " lo=" << lo << " x=" << x;
      }
    }
  }
}

TEST(SimdKernelTest, MatchAnyMatchesScalarOnEveryTier) {
  // match_any must work on *unsorted* inputs (IntGroup's (h, x)-ordered
  // groups) and must not be fooled by zero-filled masked lanes.
  std::vector<std::pair<U32List, U32List>> cases = {
      {{}, {}},
      {{0}, {}},
      {{0}, {0}},
      {{0}, {1, 2, 3}},
      {{3, 1, 2}, {2, 9, 1}},
      {{7, 0, 5}, {0, 0xFFFFFFFFu, 5, 9, 11, 13, 15, 17, 19}},
      {{0xFFFFFFFFu, 0x80000000u}, {0x80000000u, 1, 2, 3, 4, 5, 6, 7, 8}},
  };
  std::mt19937_64 rng(0xAB5E);
  for (int round = 0; round < 30; ++round) {
    U32List a = RandomSortedSet(rng, rng() % 20, 64);
    U32List b = RandomSortedSet(rng, rng() % 40, 64);
    std::shuffle(a.begin(), a.end(), rng);
    std::shuffle(b.begin(), b.end(), rng);
    cases.push_back({std::move(a), std::move(b)});
  }
  for (simd::Level level : AvailableLevels()) {
    const simd::Kernels& table = simd::KernelsForLevel(level);
    for (const auto& [a, b] : cases) {
      U32List expect;
      simd::ScalarKernels().match_any(a.data(), a.size(), b.data(), b.size(),
                                      &expect);
      U32List got;
      table.match_any(a.data(), a.size(), b.data(), b.size(), &got);
      EXPECT_EQ(got, expect) << simd::LevelName(level);
    }
  }
}

// ---------------------------------------------------------------------------
// Algorithm-level equivalence: dispatched vs scalar through the Engine.
// ---------------------------------------------------------------------------

/// True when the descriptor's option help advertises the "simd" key.
bool SupportsSimdOption(const AlgorithmDescriptor& d) {
  return d.options_help.find("simd=") != std::string::npos;
}

std::vector<std::vector<ElemList>> AdversarialWorkloads() {
  std::vector<std::vector<ElemList>> workloads;
  for (const auto& [a, b] : AdversarialPairs()) {
    workloads.push_back({a, b});
  }
  // Three-set queries for the k-way paths.
  std::mt19937_64 rng(0x3A3A);
  for (int round = 0; round < 8; ++round) {
    workloads.push_back({RandomSortedSet(rng, 50 + rng() % 100, 1 << 12),
                         RandomSortedSet(rng, 50 + rng() % 100, 1 << 12),
                         RandomSortedSet(rng, 50 + rng() % 100, 1 << 12)});
  }
  return workloads;
}

TEST(SimdAlgorithmEquivalenceTest, EveryAlgorithmEverySinkBitIdentical) {
  const auto workloads = AdversarialWorkloads();
  for (const AlgorithmDescriptor* d :
       AlgorithmRegistry::Global().Descriptors(/*include_hidden=*/true)) {
    const std::string base = d->name;
    // Algorithms without a simd knob still run: dispatched vs dispatched
    // (a tautology, but it keeps the sweep over *every* registered name,
    // so a future simd= addition is covered the moment its help says so).
    const std::string scalar_spec =
        SupportsSimdOption(*d) ? base + ":simd=off" : base;
    Engine dispatched(base);
    Engine scalar(scalar_spec);
    for (const auto& lists : workloads) {
      if (lists.size() > dispatched.max_query_sets()) continue;
      std::vector<PreparedSet> pd;
      std::vector<PreparedSet> ps;
      for (const ElemList& l : lists) {
        pd.push_back(dispatched.Prepare(l));
        ps.push_back(scalar.Prepare(l));
      }
      // Materialize (sorted).
      ElemList rd = dispatched.Query(pd).Materialize();
      ElemList rs = scalar.Query(ps).Materialize();
      ASSERT_EQ(rd, rs) << base << " Materialize";
      // Unordered ExecuteInto: identical sequence, not just identical set.
      ElemList ud;
      ElemList us;
      QueryStats sd = dispatched.Query(pd).Unordered().ExecuteInto(&ud);
      QueryStats ss = scalar.Query(ps).Unordered().ExecuteInto(&us);
      ASSERT_EQ(ud, us) << base << " Unordered";
      // Count sink and the structural QueryStats fields.
      EXPECT_EQ(dispatched.Query(pd).Count(), scalar.Query(ps).Count())
          << base;
      EXPECT_EQ(sd.num_sets, ss.num_sets) << base;
      EXPECT_EQ(sd.elements_scanned, ss.elements_scanned) << base;
      EXPECT_EQ(sd.groups_probed, ss.groups_probed) << base;
      EXPECT_EQ(sd.result_size, ss.result_size) << base;
    }
  }
}

TEST(SimdAlgorithmEquivalenceTest, BatchRunnerAgreesAcrossKernels) {
  // The BatchRunner path (what a serving deployment runs) must also be
  // kernel-invariant.
  std::mt19937_64 rng(0xBA7C4);
  std::vector<ElemList> lists;
  for (int i = 0; i < 12; ++i) {
    lists.push_back(RandomSortedSet(rng, 200 + rng() % 400, 1 << 14));
  }
  for (const char* spec : {"Merge", "RanGroupScan", "Hybrid"}) {
    Engine dispatched(spec);
    Engine scalar(std::string(spec) + ":simd=off");
    std::vector<PreparedSet> pd;
    std::vector<PreparedSet> ps;
    for (const ElemList& l : lists) {
      pd.push_back(dispatched.Prepare(l));
      ps.push_back(scalar.Prepare(l));
    }
    std::vector<BatchQuery> qd;
    std::vector<BatchQuery> qs;
    for (std::size_t i = 0; i + 1 < lists.size(); i += 2) {
      qd.push_back(BatchQuery{&pd[i], &pd[i + 1]});
      qs.push_back(BatchQuery{&ps[i], &ps[i + 1]});
    }
    BatchRunner rd(dispatched, {.num_threads = 4});
    BatchRunner rs(scalar, {.num_threads = 4});
    EXPECT_EQ(rd.Materialize(qd), rs.Materialize(qs)) << spec;
  }
}

}  // namespace
}  // namespace fsi
