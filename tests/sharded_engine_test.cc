// Tests for the serving layer (src/serve/): ShardMap routing and
// splitting, AdmissionController bounds, and ShardedEngine scatter-gather
// — differential equivalence against a plain Engine across sinks and
// shard counts, deadline edge cases (expired at admission, firing
// mid-gather), typed rejection under a full admission gate, and the
// per-shard snapshot round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fsi.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

using std::chrono::microseconds;

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fsi_sharded_" + name;
}

// ---------------------------------------------------------------------------
// ShardMap.
// ---------------------------------------------------------------------------

TEST(ShardMapTest, RejectsNonPowerOfTwoShardCounts) {
  EXPECT_THROW(ShardMap(0), std::invalid_argument);
  EXPECT_THROW(ShardMap(3), std::invalid_argument);
  EXPECT_THROW(ShardMap(12), std::invalid_argument);
  EXPECT_THROW(ShardMap(std::size_t{1} << 21), std::invalid_argument);
  EXPECT_NO_THROW(ShardMap(1));
  EXPECT_NO_THROW(ShardMap(8));
}

TEST(ShardMapTest, SingleShardOwnsEverything) {
  ShardMap map(1, 1000);
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(999), 0u);
  EXPECT_EQ(map.shard_of(0xffffffffu), 0u);
}

TEST(ShardMapTest, RangesAreContiguousAndMonotone) {
  ShardMap map(4, 1024);  // 10 universe bits, 2 shard bits -> shift 8
  EXPECT_EQ(map.shift(), 8u);
  EXPECT_EQ(map.shard_begin(0), 0u);
  EXPECT_EQ(map.shard_begin(1), 256u);
  EXPECT_EQ(map.shard_of(255), 0u);
  EXPECT_EQ(map.shard_of(256), 1u);
  std::size_t previous = 0;
  for (Elem e = 0; e < 1024; ++e) {
    const std::size_t s = map.shard_of(e);
    EXPECT_GE(s, previous);  // monotone in the element value
    previous = s;
  }
  EXPECT_EQ(previous, 3u);  // every shard reachable
}

TEST(ShardMapTest, OutOfBoundElementsClampIntoLastShard) {
  ShardMap map(4, 1024);
  EXPECT_EQ(map.shard_of(1023), 3u);
  EXPECT_EQ(map.shard_of(1024), 3u);  // at the declared bound
  EXPECT_EQ(map.shard_of(0xffffffffu), 3u);
}

TEST(ShardMapTest, SplitPreservesOrderAndRoutesEverySlice) {
  Xoshiro256 rng(7);
  const ElemList sorted = SampleSortedSet(5000, 1 << 20, rng);
  ShardMap map(8, 1 << 20);
  std::vector<ElemList> slices = map.Split(sorted);
  ASSERT_EQ(slices.size(), 8u);
  ElemList rejoined;
  for (std::size_t s = 0; s < slices.size(); ++s) {
    for (Elem e : slices[s]) EXPECT_EQ(map.shard_of(e), s);
    rejoined.insert(rejoined.end(), slices[s].begin(), slices[s].end());
  }
  EXPECT_EQ(rejoined, sorted);  // concatenation in shard order == input
}

TEST(ShardMapTest, SplitHandlesEmptyAndSingleShardInput) {
  ShardMap map(8, 1 << 16);
  EXPECT_EQ(map.Split(ElemList{}).size(), 8u);
  // All elements in one shard: seven empty slices around it.
  std::vector<ElemList> slices = map.Split(ElemList{1, 2, 3});
  EXPECT_EQ(slices[0], (ElemList{1, 2, 3}));
  for (std::size_t s = 1; s < 8; ++s) EXPECT_TRUE(slices[s].empty());
}

// ---------------------------------------------------------------------------
// AdmissionController.
// ---------------------------------------------------------------------------

TEST(AdmissionTest, AdmitsUpToBoundThenRejects) {
  AdmissionController gate(2);
  EXPECT_TRUE(gate.TryAdmit());
  EXPECT_TRUE(gate.TryAdmit());
  EXPECT_FALSE(gate.TryAdmit());  // full
  EXPECT_EQ(gate.in_flight(), 2u);
  EXPECT_EQ(gate.admitted(), 2u);
  EXPECT_EQ(gate.rejected(), 1u);
  gate.Release();
  EXPECT_TRUE(gate.TryAdmit());  // slot freed
  EXPECT_EQ(gate.admitted(), 3u);
}

TEST(AdmissionTest, ZeroBoundAdmitsNothing) {
  AdmissionController gate(0);
  EXPECT_FALSE(gate.TryAdmit());
  EXPECT_EQ(gate.rejected(), 1u);
}

TEST(AdmissionTest, TicketReleasesOnDestructionAndMove) {
  AdmissionController gate(1);
  {
    AdmissionTicket ticket(gate.TryAdmit() ? &gate : nullptr);
    ASSERT_TRUE(ticket.admitted());
    EXPECT_EQ(gate.in_flight(), 1u);
    AdmissionTicket moved = std::move(ticket);
    EXPECT_TRUE(moved.admitted());
    EXPECT_FALSE(ticket.admitted());  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(gate.in_flight(), 1u);  // move does not double-release
  }
  EXPECT_EQ(gate.in_flight(), 0u);  // destruction released the slot
}

// ---------------------------------------------------------------------------
// Differential: ShardedEngine vs plain Engine, every sink.
// ---------------------------------------------------------------------------

class ShardedDifferentialTest : public testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedDifferentialTest,
                         testing::Values(1, 2, 4, 8),
                         [](const testing::TestParamInfo<std::size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST_P(ShardedDifferentialTest, MatchesPlainEngineAcrossSinks) {
  const std::size_t num_shards = GetParam();
  constexpr std::uint64_t kUniverse = 1 << 18;
  Xoshiro256 rng(42);
  std::vector<ElemList> lists = GenerateIntersectingSets(
      {20000, 12000, 8000}, 900, kUniverse, rng);
  const ElemList truth = GroundTruth(lists);
  ASSERT_EQ(truth.size(), 900u);

  Engine plain("Planner");
  std::vector<PreparedSet> plain_sets;
  for (const ElemList& list : lists) plain_sets.push_back(plain.Prepare(list));
  const ElemList expected =
      plain.Query({&plain_sets[0], &plain_sets[1], &plain_sets[2]})
          .Materialize();
  EXPECT_EQ(expected, truth);

  ShardedEngine engine({.num_shards = num_shards,
                        .universe_bound = kUniverse,
                        .num_threads = 4});
  std::vector<ShardedSet> sets;
  for (const ElemList& list : lists) sets.push_back(engine.Prepare(list));
  const std::vector<const ShardedSet*> query = {&sets[0], &sets[1], &sets[2]};

  // Ordered materialize: bitwise-identical to the unsharded engine.
  ServeResult ordered = engine.Serve(query);
  EXPECT_EQ(ordered.status, ServeStatus::kOk);
  EXPECT_EQ(ordered.elems, expected);
  EXPECT_EQ(ordered.result_size, expected.size());
  EXPECT_EQ(ordered.shards_answered, num_shards);
  EXPECT_EQ(ordered.shards_missed, 0u);
  EXPECT_GT(ordered.elements_scanned, 0u);

  // Unordered: same multiset of elements.
  ServeResult unordered = engine.Serve(query, {.ordered = false});
  ElemList sorted_result = unordered.elems;
  std::sort(sorted_result.begin(), sorted_result.end());
  EXPECT_EQ(sorted_result, expected);

  // Count-only: exact count, no elements materialized.
  ServeResult counted = engine.Serve(query, {.count_only = true});
  EXPECT_EQ(counted.result_size, expected.size());
  EXPECT_TRUE(counted.elems.empty());

  // Ordered limit: the first N of the full ordered result.
  ServeResult limited = engine.Serve(query, {.limit = 100});
  ASSERT_EQ(limited.elems.size(), 100u);
  EXPECT_TRUE(std::equal(limited.elems.begin(), limited.elems.end(),
                         expected.begin()));

  // Unordered limit: exactly N elements, all from the true result.
  ServeResult unordered_limited =
      engine.Serve(query, {.ordered = false, .limit = 100});
  EXPECT_EQ(unordered_limited.elems.size(), 100u);
  const std::set<Elem> truth_set(expected.begin(), expected.end());
  for (Elem e : unordered_limited.elems) EXPECT_TRUE(truth_set.count(e));

  // Count-only limit clamps the count.
  ServeResult count_limited =
      engine.Serve(query, {.limit = 100, .count_only = true});
  EXPECT_EQ(count_limited.result_size, 100u);
}

TEST_P(ShardedDifferentialTest, DisjointSetsIntersectToEmpty) {
  ShardedEngine engine(
      {.num_shards = GetParam(), .universe_bound = 1 << 16, .num_threads = 2});
  ShardedSet a = engine.Prepare({1, 5, 9, 40000});
  ShardedSet b = engine.Prepare({2, 6, 10, 50000});
  ServeResult result = engine.Serve({&a, &b});
  EXPECT_EQ(result.status, ServeStatus::kOk);
  EXPECT_TRUE(result.elems.empty());
  EXPECT_EQ(result.result_size, 0u);
}

TEST(ShardedEngineTest, SingleShardIsBitwiseIdenticalToPlainEngine) {
  // shard-count = 1 routes everything through one per-shard engine built
  // with the same spec and seed as the reference — every sink must agree
  // bitwise, ordered or not.
  constexpr std::uint64_t kUniverse = 1 << 17;
  Xoshiro256 rng(3);
  std::vector<ElemList> lists =
      GenerateIntersectingSets({9000, 6000}, 500, kUniverse, rng);

  Engine plain("Planner", {.seed = kDefaultAlgorithmSeed});
  PreparedSet pa = plain.Prepare(lists[0]);
  PreparedSet pb = plain.Prepare(lists[1]);

  ShardedEngine engine({.num_shards = 1, .universe_bound = kUniverse});
  ShardedSet sa = engine.Prepare(lists[0]);
  ShardedSet sb = engine.Prepare(lists[1]);

  EXPECT_EQ(engine.Serve({&sa, &sb}).elems,
            plain.Query({&pa, &pb}).Materialize());
  EXPECT_EQ(engine.Serve({&sa, &sb}, {.ordered = false}).elems,
            plain.Query({&pa, &pb}).Unordered().Materialize());
  EXPECT_EQ(engine.Serve({&sa, &sb}, {.count_only = true}).result_size,
            plain.Query({&pa, &pb}).Count());
  EXPECT_EQ(engine.Serve({&sa, &sb}, {.limit = 37}).elems,
            plain.Query({&pa, &pb}).Limit(37).Materialize());
}

TEST(ShardedEngineTest, EmptyAndSingletonInputs) {
  ShardedEngine engine({.num_shards = 4, .universe_bound = 1 << 16});
  ShardedSet empty = engine.Prepare(std::span<const Elem>{});
  ShardedSet some = engine.Prepare({3, 7, 11});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.num_shards(), 4u);

  ServeResult with_empty = engine.Serve({&empty, &some});
  EXPECT_EQ(with_empty.status, ServeStatus::kOk);
  EXPECT_TRUE(with_empty.elems.empty());

  ServeResult single = engine.Serve({&some});
  EXPECT_EQ(single.elems, (ElemList{3, 7, 11}));

  ServeResult none = engine.Serve(std::span<const ShardedSet* const>{});
  EXPECT_EQ(none.status, ServeStatus::kOk);
  EXPECT_TRUE(none.elems.empty());
}

TEST(ShardedEngineTest, MisuseThrowsOnCallingThread) {
  ShardedEngine e1({.num_shards = 2, .universe_bound = 1 << 10});
  ShardedEngine e2({.num_shards = 2, .universe_bound = 1 << 10});
  ShardedSet a = e1.Prepare({1, 2, 3});
  ShardedSet foreign = e2.Prepare({2, 3, 4});
  ShardedSet empty_handle;
  EXPECT_THROW(e1.Serve({&a, &foreign}), std::invalid_argument);
  EXPECT_THROW(e1.Serve({&a, &empty_handle}), std::invalid_argument);
  EXPECT_THROW(e1.Serve({&a, nullptr}), std::invalid_argument);
  ShardedEngine validating(
      {.num_shards = 2, .validation = ValidationPolicy::kFull});
  EXPECT_THROW(validating.Prepare({3, 2, 1}), std::invalid_argument);
  EXPECT_THROW(validating.Prepare({1, 1, 2}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------------

TEST(ShardedDeadlineTest, ZeroDeadlineExpiresAtAdmission) {
  ShardedEngine engine({.num_shards = 4, .universe_bound = 1 << 14});
  ShardedSet a = engine.Prepare({1, 2, 3, 5000, 9000});
  ShardedSet b = engine.Prepare({2, 3, 5000, 8000});

  ServeResult result = engine.Serve({&a, &b}, {.deadline = microseconds{0}});
  EXPECT_EQ(result.status, ServeStatus::kExpired);
  EXPECT_TRUE(result.elems.empty());
  EXPECT_EQ(result.shards_answered, 0u);
  EXPECT_EQ(result.shards_missed, 4u);

  ServeResult negative =
      engine.Serve({&a, &b}, {.deadline = microseconds{-50}});
  EXPECT_EQ(negative.status, ServeStatus::kExpired);

  ServeCounters counters = engine.counters();
  EXPECT_EQ(counters.deadline_misses, 2u);
  EXPECT_EQ(counters.served, 0u);  // nothing was scattered
  EXPECT_EQ(counters.in_flight, 0u);
}

TEST(ShardedDeadlineTest, EngineDefaultDeadlineApplies) {
  // A tight engine-wide default deadline over chunky single-threaded work
  // must cut queries short even when ServeOptions carries no deadline; an
  // explicit generous per-query deadline overrides it.  (A default <= 0
  // means *no* default — that path is plain kOk, covered elsewhere.)
  constexpr std::uint64_t kUniverse = 1 << 18;
  Xoshiro256 rng(19);
  std::vector<ElemList> lists =
      GenerateIntersectingSets({60000, 40000}, 3000, kUniverse, rng);
  ShardedEngine engine({.num_shards = 8,
                        .universe_bound = kUniverse,
                        .num_threads = 1,
                        .default_deadline = microseconds{1}});
  ShardedSet a = engine.Prepare(lists[0]);
  ShardedSet b = engine.Prepare(lists[1]);
  // No per-query deadline: the 1µs default applies and fires mid-gather.
  EXPECT_EQ(engine.Serve({&a, &b}).status, ServeStatus::kPartial);
  // An explicit generous per-query deadline overrides the default.
  ServeResult generous =
      engine.Serve({&a, &b}, {.deadline = microseconds{30'000'000}});
  EXPECT_EQ(generous.status, ServeStatus::kOk);
  EXPECT_EQ(generous.elems, GroundTruth(lists));
}

TEST(ShardedDeadlineTest, DeadlineFiringMidGatherYieldsPartialResult) {
  // One worker thread, eight shards of real work, a 1µs budget: the
  // deadline is guaranteed to fire while most shards are still queued.
  // Shards that answered in time must still be exact.
  constexpr std::uint64_t kUniverse = 1 << 18;
  Xoshiro256 rng(11);
  std::vector<ElemList> lists =
      GenerateIntersectingSets({60000, 40000}, 3000, kUniverse, rng);
  const ElemList truth = GroundTruth(lists);

  ShardedEngine engine(
      {.num_shards = 8, .universe_bound = kUniverse, .num_threads = 1});
  ShardedSet a = engine.Prepare(lists[0]);
  ShardedSet b = engine.Prepare(lists[1]);

  ServeResult result =
      engine.Serve({&a, &b}, {.deadline = microseconds{1}});
  EXPECT_EQ(result.status, ServeStatus::kPartial);
  EXPECT_GT(result.shards_missed, 0u);
  EXPECT_EQ(result.shards_answered + result.shards_missed, 8u);
  EXPECT_TRUE(result.partial());
  // Whatever arrived is a subset of the truth, in order.
  EXPECT_TRUE(std::includes(truth.begin(), truth.end(), result.elems.begin(),
                            result.elems.end()));
  EXPECT_GE(engine.counters().deadline_misses, 1u);
  EXPECT_EQ(engine.counters().served, 1u);  // partial still counts as served

  // The same query with a generous budget completes exactly.
  ServeResult full =
      engine.Serve({&a, &b}, {.deadline = microseconds{30'000'000}});
  EXPECT_EQ(full.status, ServeStatus::kOk);
  EXPECT_EQ(full.elems, truth);
}

TEST(ShardedDeadlineTest, AbandonedShardsDoNotCorruptLaterQueries) {
  // After a partial gather returns, abandoned tasks may still be queued;
  // they must self-cancel (finalized flag) and later queries on the same
  // engine must see clean, complete results.
  constexpr std::uint64_t kUniverse = 1 << 18;
  Xoshiro256 rng(13);
  std::vector<ElemList> lists =
      GenerateIntersectingSets({50000, 30000}, 2000, kUniverse, rng);
  const ElemList truth = GroundTruth(lists);

  ShardedEngine engine(
      {.num_shards = 8, .universe_bound = kUniverse, .num_threads = 1});
  ShardedSet a = engine.Prepare(lists[0]);
  ShardedSet b = engine.Prepare(lists[1]);
  for (int round = 0; round < 10; ++round) {
    engine.Serve({&a, &b}, {.deadline = microseconds{1}});
    ServeResult clean = engine.Serve({&a, &b});
    EXPECT_EQ(clean.status, ServeStatus::kOk);
    EXPECT_EQ(clean.elems, truth);
  }
  EXPECT_EQ(engine.counters().in_flight, 0u);  // every ticket released
}

// ---------------------------------------------------------------------------
// Admission / rejection.
// ---------------------------------------------------------------------------

TEST(ShardedAdmissionTest, ZeroInFlightBoundRejectsEveryQuery) {
  ShardedEngine engine(
      {.num_shards = 2, .universe_bound = 1 << 10, .max_in_flight = 0});
  ShardedSet a = engine.Prepare({1, 2, 3});
  ServeResult result = engine.Serve({&a});
  EXPECT_EQ(result.status, ServeStatus::kRejected);
  EXPECT_TRUE(result.elems.empty());
  EXPECT_EQ(result.shards_missed, 2u);
  EXPECT_EQ(engine.counters().rejected, 1u);
  EXPECT_EQ(engine.counters().admitted, 0u);
  EXPECT_EQ(engine.counters().served, 0u);
}

TEST(ShardedAdmissionTest, FullGateRejectsConcurrentQuery) {
  // Gate of one: while a slow query (single worker, chunky shards) holds
  // the only slot, a concurrent Serve must be rejected, not queued.
  constexpr std::uint64_t kUniverse = 1 << 18;
  Xoshiro256 rng(17);
  std::vector<ElemList> lists =
      GenerateIntersectingSets({80000, 60000}, 4000, kUniverse, rng);

  ShardedEngine engine({.num_shards = 8,
                        .universe_bound = kUniverse,
                        .num_threads = 1,
                        .max_in_flight = 1});
  ShardedSet a = engine.Prepare(lists[0]);
  ShardedSet b = engine.Prepare(lists[1]);

  std::atomic<bool> background_done{false};
  std::thread background([&] {
    engine.Serve({&a, &b});
    background_done.store(true);
  });
  // Wait until the background query holds the admission slot.
  while (engine.counters().in_flight == 0 && !background_done.load()) {
    std::this_thread::yield();
  }
  if (!background_done.load()) {
    ServeResult result = engine.Serve({&a, &b});
    EXPECT_EQ(result.status, ServeStatus::kRejected);
    EXPECT_GE(engine.counters().rejected, 1u);
  }
  background.join();
  EXPECT_EQ(engine.counters().in_flight, 0u);
  // Once the slot frees, the same query is admitted and completes.
  EXPECT_EQ(engine.Serve({&a, &b}).status, ServeStatus::kOk);
}

// ---------------------------------------------------------------------------
// ServeBatch statistics.
// ---------------------------------------------------------------------------

TEST(ShardedBatchTest, FillsLatencyPercentilesAndCounters) {
  constexpr std::uint64_t kUniverse = 1 << 16;
  Xoshiro256 rng(23);
  std::vector<ElemList> lists =
      GenerateIntersectingSets({8000, 6000, 5000}, 300, kUniverse, rng);

  ShardedEngine engine(
      {.num_shards = 4, .universe_bound = kUniverse, .num_threads = 2});
  std::vector<ShardedSet> sets;
  for (const ElemList& list : lists) sets.push_back(engine.Prepare(list));

  std::vector<ShardedEngine::ShardedQuery> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back({&sets[0], &sets[1]});
    queries.push_back({&sets[1], &sets[2]});
    queries.push_back({&sets[0], &sets[1], &sets[2]});
  }
  std::vector<ServeResult> results = engine.ServeBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (const ServeResult& result : results) {
    EXPECT_EQ(result.status, ServeStatus::kOk);
  }

  const BatchStats& stats = engine.batch_stats();
  EXPECT_EQ(stats.num_queries, queries.size());
  EXPECT_GT(stats.p50_micros, 0.0);
  EXPECT_LE(stats.p50_micros, stats.p95_micros);
  EXPECT_LE(stats.p95_micros, stats.p99_micros);
  EXPECT_LE(stats.p99_micros, stats.max_micros);
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.total_results, 0u);
}

TEST(ShardedBatchTest, CountsRejectionsAndMisses) {
  ShardedEngine rejecting(
      {.num_shards = 2, .universe_bound = 1 << 10, .max_in_flight = 0});
  ShardedSet a = rejecting.Prepare({1, 2, 3});
  std::vector<ShardedEngine::ShardedQuery> queries(5, {&a});
  std::vector<ServeResult> results = rejecting.ServeBatch(queries);
  for (const ServeResult& result : results) {
    EXPECT_EQ(result.status, ServeStatus::kRejected);
  }
  EXPECT_EQ(rejecting.batch_stats().rejected, 5u);
  EXPECT_EQ(rejecting.batch_stats().deadline_misses, 0u);

  ShardedEngine expiring({.num_shards = 2, .universe_bound = 1 << 10});
  ShardedSet b = expiring.Prepare({1, 2, 3});
  std::vector<ShardedEngine::ShardedQuery> expired_queries(3, {&b});
  expiring.ServeBatch(expired_queries, {.deadline = microseconds{0}});
  EXPECT_EQ(expiring.batch_stats().deadline_misses, 3u);
  EXPECT_EQ(expiring.batch_stats().rejected, 0u);
}

// ---------------------------------------------------------------------------
// Per-shard snapshots.
// ---------------------------------------------------------------------------

TEST(ShardedSnapshotTest, RoundTripPreservesResultsAndOrder) {
  constexpr std::uint64_t kUniverse = 1 << 17;
  Xoshiro256 rng(31);
  std::vector<ElemList> lists =
      GenerateIntersectingSets({15000, 10000, 7000}, 600, kUniverse, rng);
  const ElemList truth = GroundTruth(lists);

  const std::string path = TempPath("roundtrip.snap");
  ShardedEngine original(
      {.num_shards = 4, .universe_bound = kUniverse, .num_threads = 2});
  std::vector<ShardedSet> sets;
  for (const ElemList& list : lists) sets.push_back(original.Prepare(list));
  original.SaveSnapshot(path, {&sets[0], &sets[1], &sets[2]});

  LoadedShardedSnapshot loaded = ShardedEngine::LoadSnapshot(path);
  EXPECT_EQ(loaded.engine.num_shards(), 4u);
  EXPECT_EQ(loaded.engine.options().universe_bound, kUniverse);
  ASSERT_EQ(loaded.sets.size(), 3u);
  ASSERT_EQ(loaded.shard_infos.size(), 4u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(loaded.sets[j].size(), lists[j].size());  // save order kept
  }

  ServeResult result =
      loaded.engine.Serve({&loaded.sets[0], &loaded.sets[1], &loaded.sets[2]});
  EXPECT_EQ(result.status, ServeStatus::kOk);
  EXPECT_EQ(result.elems, truth);

  // Loaded engine accepts new Prepare calls against the same shard map.
  ShardedSet fresh = loaded.engine.Prepare(lists[0]);
  EXPECT_EQ(loaded.engine.Serve({&fresh, &loaded.sets[1]}).elems,
            loaded.engine.Serve({&loaded.sets[0], &loaded.sets[1]}).elems);

  std::remove(path.c_str());
  for (int s = 0; s < 4; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

TEST(ShardedSnapshotTest, TypedErrorsOnMissingOrMalformedManifest) {
  const std::string missing = TempPath("missing.snap");
  try {
    ShardedEngine::LoadSnapshot(missing);
    FAIL() << "expected SnapshotError";
  } catch (const storage::SnapshotError& error) {
    EXPECT_EQ(error.code(), storage::SnapshotErrorCode::kIo);
  }

  const std::string garbage = TempPath("garbage.snap");
  {
    std::ofstream out(garbage);
    out << "not a manifest at all\n";
  }
  try {
    ShardedEngine::LoadSnapshot(garbage);
    FAIL() << "expected SnapshotError";
  } catch (const storage::SnapshotError& error) {
    EXPECT_EQ(error.code(), storage::SnapshotErrorCode::kBadMagic);
  }
  std::remove(garbage.c_str());

  const std::string truncated = TempPath("truncated.snap");
  {
    std::ofstream out(truncated);
    out << "fsi-sharded-manifest 1\nnum_shards 4\n";  // missing the rest
  }
  try {
    ShardedEngine::LoadSnapshot(truncated);
    FAIL() << "expected SnapshotError";
  } catch (const storage::SnapshotError& error) {
    EXPECT_EQ(error.code(), storage::SnapshotErrorCode::kCorrupt);
  }
  std::remove(truncated.c_str());
}

TEST(ShardedSnapshotTest, MissingShardImageSurfacesAsSnapshotError) {
  const std::string path = TempPath("lost_shard.snap");
  ShardedEngine engine({.num_shards = 2, .universe_bound = 1 << 10});
  ShardedSet a = engine.Prepare({1, 2, 3, 700});
  engine.SaveSnapshot(path, {&a});
  std::remove((path + ".shard1").c_str());
  EXPECT_THROW(ShardedEngine::LoadSnapshot(path), storage::SnapshotError);
  std::remove(path.c_str());
  std::remove((path + ".shard0").c_str());
}

}  // namespace
}  // namespace fsi
