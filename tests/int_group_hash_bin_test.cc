// Algorithm-specific tests for IntGroup (Section 3.1) and HashBin
// (Section 3.4).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hash_bin.h"
#include "core/int_group.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList GroundTruth(const ElemList& a, const ElemList& b) {
  ElemList out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// ---------------------------------------------------------------------------
// IntGroup
// ---------------------------------------------------------------------------

TEST(IntGroupTest, GroupStructureInvariants) {
  IntGroupIntersection alg;
  Xoshiro256 rng(21);
  ElemList set = SampleSortedSet(1000, 1 << 20, rng);
  auto pre = alg.Preprocess(set);
  const auto& s = As<FixedGroupSet>(*pre);
  ASSERT_EQ(s.group_size(), static_cast<std::size_t>(kSqrtWordBits));
  ASSERT_EQ(s.num_groups(), (set.size() + 7) / 8);
  for (std::size_t p = 0; p < s.num_groups(); ++p) {
    auto [lo, hi] = s.GroupRange(p);
    Word img = 0;
    Elem mn = ~Elem{0};
    Elem mx = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      img |= WordBit(s.hvals()[i]);
      mn = std::min(mn, s.elems()[i]);
      mx = std::max(mx, s.elems()[i]);
      if (i > lo) {
        // (h, x)-order inside the group.
        bool ordered = s.hvals()[i - 1] < s.hvals()[i] ||
                       (s.hvals()[i - 1] == s.hvals()[i] &&
                        s.elems()[i - 1] < s.elems()[i]);
        ASSERT_TRUE(ordered) << "group " << p;
      }
    }
    ASSERT_EQ(s.Image(p), img);
    ASSERT_EQ(s.GroupMin(p), mn);
    ASSERT_EQ(s.GroupMax(p), mx);
  }
  // Group ranges must be consecutive and ordered by value.
  for (std::size_t p = 1; p < s.num_groups(); ++p) {
    ASSERT_LT(s.GroupMax(p - 1), s.GroupMin(p));
  }
}

TEST(IntGroupTest, VariousGroupSizes) {
  Xoshiro256 rng(22);
  auto lists = GenerateIntersectingSets({1500, 2500}, 31, 1 << 22, rng);
  ElemList expected = GroundTruth(lists[0], lists[1]);
  for (std::size_t gs : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    IntGroupIntersection::Options o;
    o.group_size = gs;
    IntGroupIntersection alg(o);
    EXPECT_EQ(alg.IntersectLists(lists), expected) << "group_size=" << gs;
  }
}

TEST(IntGroupTest, RejectsMoreThanTwoSets) {
  IntGroupIntersection alg;
  ElemList a = {1, 2};
  auto p1 = alg.Preprocess(a);
  auto p2 = alg.Preprocess(a);
  auto p3 = alg.Preprocess(a);
  std::vector<const PreprocessedSet*> sets = {p1.get(), p2.get(), p3.get()};
  ElemList out;
  EXPECT_THROW(alg.Intersect(sets, &out), std::invalid_argument);
  EXPECT_EQ(alg.max_query_sets(), 2u);
}

TEST(IntGroupTest, RejectsBadGroupSize) {
  IntGroupIntersection::Options o;
  o.group_size = 0;
  EXPECT_THROW(IntGroupIntersection{o}, std::invalid_argument);
  o.group_size = 1000;
  EXPECT_THROW(IntGroupIntersection{o}, std::invalid_argument);
}

TEST(IntGroupTest, HeavyCollisionGroups) {
  // Dense consecutive values make whole groups share few hash values.
  ElemList a, b;
  for (Elem i = 0; i < 2000; ++i) a.push_back(i);
  for (Elem i = 1000; i < 3000; ++i) b.push_back(i);
  IntGroupIntersection alg;
  EXPECT_EQ(alg.IntersectLists(std::vector<ElemList>{a, b}),
            GroundTruth(a, b));
}

// ---------------------------------------------------------------------------
// HashBin
// ---------------------------------------------------------------------------

TEST(HashBinTest, SkewedPairsAllRatios) {
  Xoshiro256 rng(23);
  for (std::size_t n1 : {1u, 2u, 10u, 100u, 1000u}) {
    auto lists = GenerateIntersectingSets({n1, 50000},
                                          std::min<std::size_t>(n1, 3),
                                          1 << 24, rng);
    HashBinIntersection alg;
    EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists[0], lists[1]))
        << "n1=" << n1;
  }
}

TEST(HashBinTest, BalancedSizesStillCorrect) {
  // HashBin is designed for skew but must stay correct without it.
  Xoshiro256 rng(24);
  auto lists = GenerateIntersectingSets({5000, 5000}, 49, 1 << 22, rng);
  HashBinIntersection alg;
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists[0], lists[1]));
}

TEST(HashBinTest, MultiSetExtension) {
  Xoshiro256 rng(25);
  auto lists =
      GenerateIntersectingSets({30, 3000, 30000}, 5, 1 << 24, rng);
  HashBinIntersection alg;
  ElemList expected = GroundTruth(GroundTruth(lists[0], lists[1]), lists[2]);
  EXPECT_EQ(alg.IntersectLists(lists), expected);
}

TEST(HashBinTest, GOrderedSetSpaceIsHalfWordPerElement) {
  HashBinIntersection alg;
  Xoshiro256 rng(26);
  ElemList set = SampleSortedSet(10000, 1 << 24, rng);
  auto pre = alg.Preprocess(set);
  EXPECT_EQ(pre->SizeInWords(), 5000u);
}

TEST(HashBinTest, DenseLeadGroupsMultipleElementsPerGroup) {
  // n1 not a power of two and dense: lead groups hold >1 element.
  Xoshiro256 rng(27);
  auto lists = GenerateIntersectingSets({777, 7777}, 77, 1 << 20, rng);
  HashBinIntersection alg;
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists[0], lists[1]));
}

}  // namespace
}  // namespace fsi
