#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"

namespace fsi {
namespace {

std::vector<std::string> Terms(std::initializer_list<const char*> ts) {
  return {ts.begin(), ts.end()};
}

class InvertedIndexTest : public ::testing::Test {
 protected:
  InvertedIndexTest() : index_(Engine("Hybrid")) {
    index_.AddDocument(1, Terms({"fast", "set", "intersection"}));
    index_.AddDocument(2, Terms({"fast", "hash", "join"}));
    index_.AddDocument(5, Terms({"set", "intersection", "memory"}));
    index_.AddDocument(9, Terms({"fast", "intersection", "memory"}));
    index_.Finalize();
  }

  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, SingleTermQuery) {
  EXPECT_EQ(index_.Query(Terms({"fast"})), (ElemList{1, 2, 9}));
  EXPECT_EQ(index_.Query(Terms({"memory"})), (ElemList{5, 9}));
}

TEST_F(InvertedIndexTest, ConjunctiveQuery) {
  EXPECT_EQ(index_.Query(Terms({"fast", "intersection"})), (ElemList{1, 9}));
  EXPECT_EQ(index_.Query(Terms({"set", "intersection", "memory"})),
            (ElemList{5}));
}

TEST_F(InvertedIndexTest, CountMatchingAgreesWithQuery) {
  EXPECT_EQ(index_.CountMatching(Terms({"fast", "intersection"})), 2u);
  EXPECT_EQ(index_.CountMatching(Terms({"nosuchterm", "fast"})), 0u);
  EXPECT_EQ(index_.CountMatching({}), 0u);
  QueryStats stats;
  index_.Query(Terms({"fast", "intersection"}), &stats);
  EXPECT_EQ(stats.result_size, 2u);
  EXPECT_GT(stats.elements_scanned, 0u);
  EXPECT_EQ(stats.num_sets, 2u);
}

TEST_F(InvertedIndexTest, UnknownTermYieldsEmpty) {
  EXPECT_TRUE(index_.Query(Terms({"fast", "nosuchterm"})).empty());
  EXPECT_TRUE(index_.Query(Terms({"nosuchterm"})).empty());
}

TEST_F(InvertedIndexTest, EmptyQuery) {
  EXPECT_TRUE(index_.Query({}).empty());
}

TEST_F(InvertedIndexTest, DocumentFrequency) {
  EXPECT_EQ(index_.DocumentFrequency("fast"), 3u);
  EXPECT_EQ(index_.DocumentFrequency("hash"), 1u);
  EXPECT_EQ(index_.DocumentFrequency("nosuchterm"), 0u);
}

TEST_F(InvertedIndexTest, Counts) {
  EXPECT_EQ(index_.num_documents(), 4u);
  EXPECT_EQ(index_.num_terms(), 6u);
  EXPECT_GT(index_.SizeInWords(), 0u);
}

TEST(InvertedIndexValidationTest, RejectsNonIncreasingDocIds) {
  InvertedIndex index{Engine("Merge")};
  index.AddDocument(5, Terms({"a"}));
  EXPECT_THROW(index.AddDocument(5, Terms({"b"})), std::invalid_argument);
  EXPECT_THROW(index.AddDocument(3, Terms({"b"})), std::invalid_argument);
}

TEST(InvertedIndexValidationTest, LifecycleErrors) {
  InvertedIndex index{Engine("Merge")};
  index.AddDocument(1, Terms({"a"}));
  EXPECT_THROW(index.Query(Terms({"a"})), std::logic_error);  // not finalized
  index.Finalize();
  EXPECT_THROW(index.Finalize(), std::logic_error);
  EXPECT_THROW(index.AddDocument(2, Terms({"b"})), std::logic_error);
}

TEST(InvertedIndexValidationTest, DuplicateTermInDocumentCollapses) {
  InvertedIndex index{Engine("Merge")};
  index.AddDocument(1, Terms({"a", "a", "a"}));
  index.Finalize();
  EXPECT_EQ(index.DocumentFrequency("a"), 1u);
}

TEST(InvertedIndexAlgorithmsTest, SameResultsUnderEveryAlgorithm) {
  // The index must behave identically regardless of the plugged algorithm.
  std::vector<ElemList> expected;
  std::vector<std::string> algorithms = {"Merge", "RanGroupScan", "HashBin",
                                         "Hybrid", "SvS",
                                         "RanGroupScan_Lowbits"};
  for (const auto& name : algorithms) {
    InvertedIndex index{Engine(name)};
    for (Elem d = 0; d < 500; ++d) {
      std::vector<std::string> terms;
      if (d % 2 == 0) terms.push_back("even");
      if (d % 3 == 0) terms.push_back("three");
      if (d % 5 == 0) terms.push_back("five");
      terms.push_back("all");
      index.AddDocument(d, terms);
    }
    index.Finalize();
    ElemList result = index.Query(Terms({"even", "three", "five"}));
    // Multiples of 30.
    ElemList want;
    for (Elem d = 0; d < 500; d += 30) want.push_back(d);
    EXPECT_EQ(result, want) << name;
  }
}

}  // namespace
}  // namespace fsi
