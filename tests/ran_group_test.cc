// Algorithm-specific tests for RanGroup (Algorithms 3 & 4).

#include "core/ran_group.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

TEST(RanGroupTest, TwoSetOptimalVsSizeDependentAgree) {
  Xoshiro256 rng(11);
  auto lists = GenerateIntersectingSets({100, 40000}, 17, 1 << 24, rng);
  ElemList expected = GroundTruth(lists);
  RanGroupIntersection::Options balanced;
  balanced.two_set_optimal = true;
  RanGroupIntersection::Options sized;
  sized.two_set_optimal = false;
  EXPECT_EQ(RanGroupIntersection(balanced).IntersectLists(lists), expected);
  EXPECT_EQ(RanGroupIntersection(sized).IntersectLists(lists), expected);
}

TEST(RanGroupTest, ExtremeSkew) {
  Xoshiro256 rng(12);
  auto lists = GenerateIntersectingSets({4, 100000}, 2, 1 << 24, rng);
  RanGroupIntersection alg;
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists));
}

TEST(RanGroupTest, FiveSets) {
  Xoshiro256 rng(13);
  auto lists =
      GenerateIntersectingSets({50, 100, 200, 400, 800}, 7, 1 << 20, rng);
  RanGroupIntersection alg;
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists));
}

TEST(RanGroupTest, CollidingHashValuesStillCorrect) {
  // Small universe + many elements => every h-chain holds several elements,
  // exercising the chain-merge path (I_!= of the Theorem 3.3 proof).
  Xoshiro256 rng(14);
  RanGroupIntersection::Options o;
  o.universe_bits = 14;
  RanGroupIntersection alg(o);
  auto lists = GenerateIntersectingSets({3000, 4000}, 123, 1 << 14, rng);
  EXPECT_EQ(alg.IntersectLists(lists), GroundTruth(lists));
}

TEST(RanGroupTest, RepeatedQueriesOnSharedStructures) {
  // Pre-process once, intersect many different combinations (the library's
  // intended usage pattern).
  Xoshiro256 rng(15);
  RanGroupIntersection alg;
  std::vector<ElemList> lists;
  std::vector<std::unique_ptr<PreprocessedSet>> pre;
  for (int i = 0; i < 5; ++i) {
    lists.push_back(SampleSortedSet(1000 + 500 * static_cast<std::size_t>(i),
                                    1 << 14, rng));
    pre.push_back(alg.Preprocess(lists.back()));
  }
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      std::vector<const PreprocessedSet*> sets = {pre[a].get(), pre[b].get()};
      ElemList out;
      alg.Intersect(sets, &out);
      EXPECT_EQ(out, GroundTruth({lists[a], lists[b]})) << a << "," << b;
    }
  }
}

TEST(RanGroupTest, SingleResolutionModeCorrect) {
  Xoshiro256 rng(17);
  RanGroupIntersection::Options o;
  o.single_resolution = true;
  RanGroupIntersection alg(o);
  auto pair2 = GenerateIntersectingSets({300, 5000}, 12, 1 << 22, rng);
  EXPECT_EQ(alg.IntersectLists(pair2), GroundTruth(pair2));
  auto triple = GenerateIntersectingSets({100, 200, 300}, 8, 1 << 20, rng);
  EXPECT_EQ(alg.IntersectLists(triple), GroundTruth(triple));
}

TEST(RanGroupTest, SingleSetQueryReturnsTheSet) {
  Xoshiro256 rng(16);
  ElemList set = SampleSortedSet(500, 1 << 20, rng);
  RanGroupIntersection alg;
  EXPECT_EQ(alg.IntersectLists(std::vector<ElemList>{set}), set);
}

}  // namespace
}  // namespace fsi
